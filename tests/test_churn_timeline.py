"""Tests for the churn workload and timeline collection."""

import random

import pytest

from repro import AdaptiveParams, ExperimentConfig, run_experiment
from repro.client.base import OP_DELETE, OP_INSERT, OP_SEARCH
from repro.workloads import make_workload
from repro.workloads.mixes import churn_mix
from repro.workloads.scales import FixedScale


class TestChurnMix:
    def test_fractions_roughly_hold(self):
        rng = random.Random(1)
        reqs = churn_mix(rng, FixedScale(0.001), 3000, client_id=1,
                         insert_fraction=0.15, delete_fraction=0.1)
        inserts = sum(1 for r in reqs if r.op == OP_INSERT)
        deletes = sum(1 for r in reqs if r.op == OP_DELETE)
        searches = sum(1 for r in reqs if r.op == OP_SEARCH)
        assert 0.10 < inserts / len(reqs) < 0.20
        assert 0.05 < deletes / len(reqs) < 0.15
        assert searches == len(reqs) - inserts - deletes

    def test_every_delete_follows_its_insert(self):
        rng = random.Random(2)
        reqs = churn_mix(rng, FixedScale(0.001), 2000, client_id=3,
                         insert_fraction=0.2, delete_fraction=0.2)
        live = set()
        for r in reqs:
            if r.op == OP_INSERT:
                live.add(r.data_id)
            elif r.op == OP_DELETE:
                assert r.data_id in live, "delete before its insert"
                live.remove(r.data_id)

    def test_no_double_deletes(self):
        rng = random.Random(3)
        reqs = churn_mix(rng, FixedScale(0.001), 2000, client_id=3,
                         insert_fraction=0.2, delete_fraction=0.2)
        deleted = [r.data_id for r in reqs if r.op == OP_DELETE]
        assert len(deleted) == len(set(deleted))

    def test_fraction_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            churn_mix(rng, FixedScale(0.001), 10, 0,
                      insert_fraction=0.6, delete_fraction=0.6)

    def test_make_workload_churn(self):
        fn = make_workload("churn", scale_spec="0.001", n_requests=50,
                           insert_fraction=0.2)
        reqs = fn(0, random.Random(0))
        assert len(reqs) == 50

    def test_churn_experiment_runs(self):
        result = run_experiment(ExperimentConfig(
            scheme="catfish",
            workload_kind="churn",
            insert_fraction=0.2,
            n_clients=4,
            requests_per_client=80,
            dataset_size=1500,
            max_entries=16,
            server_cores=4,
            seed=8,
        ))
        assert result.total_requests == 4 * 80
        assert result.inserts_served > 0
        # deletes are counted on the server
        assert result.extra is not None


class TestTimeline:
    def test_timeline_disabled_by_default(self):
        result = run_experiment(ExperimentConfig(
            n_clients=2, requests_per_client=20, dataset_size=500,
            max_entries=16, server_cores=2,
        ))
        assert result.timeline == []

    def test_timeline_collected(self):
        result = run_experiment(ExperimentConfig(
            scheme="catfish",
            n_clients=12,
            requests_per_client=200,
            dataset_size=2000,
            max_entries=16,
            server_cores=2,
            heartbeat_interval=0.1e-3,
            collect_timeline=True,
            seed=9,
        ))
        assert len(result.timeline) >= 5
        times = [t for t, _c, _o in result.timeline]
        assert times == sorted(times)
        for _t, cpu, offload in result.timeline:
            assert 0.0 <= cpu <= 1.0
            assert 0.0 <= offload <= 1.0

    def test_timeline_shows_offloading_ramp(self):
        """Under saturation, later windows offload more than the first."""
        result = run_experiment(ExperimentConfig(
            scheme="catfish",
            n_clients=16,
            requests_per_client=300,
            dataset_size=2000,
            max_entries=16,
            server_cores=1,
            heartbeat_interval=0.1e-3,
            adaptive=AdaptiveParams(N=8, T=0.9, Inv=0.1e-3),
            collect_timeline=True,
            seed=10,
        ))
        assert result.offload_fraction > 0
        first = result.timeline[0][2]
        peak = max(o for _t, _c, o in result.timeline)
        assert peak > first
