"""Unit tests for named RNG streams."""

from repro.sim import RngRegistry


def test_same_seed_same_stream_is_reproducible():
    a = RngRegistry(seed=42).stream("workload")
    b = RngRegistry(seed=42).stream("workload")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    reg = RngRegistry(seed=42)
    a = reg.stream("workload")
    b = reg.stream("backoff")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x")
    b = RngRegistry(seed=2).stream("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    reg = RngRegistry(seed=0)
    assert reg.stream("s") is reg.stream("s")


def test_fork_derives_independent_registry():
    reg = RngRegistry(seed=7)
    child1 = reg.fork("client-1")
    child2 = reg.fork("client-2")
    s1 = child1.stream("workload")
    s2 = child2.stream("workload")
    assert [s1.random() for _ in range(5)] != [s2.random() for _ in range(5)]


def test_fork_is_deterministic():
    a = RngRegistry(seed=7).fork("client-1").stream("w")
    b = RngRegistry(seed=7).fork("client-1").stream("w")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_order_of_stream_creation_does_not_matter():
    reg1 = RngRegistry(seed=3)
    reg1.stream("a")
    first = [reg1.stream("b").random() for _ in range(5)]
    reg2 = RngRegistry(seed=3)
    second = [reg2.stream("b").random() for _ in range(5)]
    assert first == second
