"""Unit tests for measurement trackers."""

import math

import pytest

from repro.sim import (
    ByteCounter,
    LatencyRecorder,
    Simulator,
    TallyStats,
    TimeSeries,
    UtilizationTracker,
)


class TestTallyStats:
    def test_empty(self):
        s = TallyStats()
        assert s.count == 0
        assert math.isnan(s.mean)

    def test_mean_and_extremes(self):
        s = TallyStats()
        for v in [1.0, 2.0, 3.0, 4.0]:
            s.record(v)
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_variance_matches_textbook(self):
        s = TallyStats()
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for v in data:
            s.record(v)
        mean = sum(data) / len(data)
        var = sum((v - mean) ** 2 for v in data) / (len(data) - 1)
        assert s.variance == pytest.approx(var)
        assert s.stdev == pytest.approx(math.sqrt(var))

    def test_single_sample_variance_zero(self):
        s = TallyStats()
        s.record(5.0)
        assert s.variance == 0.0


class TestLatencyRecorder:
    def test_percentiles(self):
        r = LatencyRecorder()
        for v in range(1, 101):
            r.record(float(v))
        assert r.percentile(0) == 1.0
        assert r.percentile(100) == 100.0
        assert r.percentile(50) == pytest.approx(50.5)
        assert r.percentile(99) == pytest.approx(99.01)

    def test_percentile_empty_is_nan(self):
        r = LatencyRecorder()
        assert math.isnan(r.percentile(50))

    def test_percentile_bounds(self):
        r = LatencyRecorder()
        r.record(1.0)
        with pytest.raises(ValueError):
            r.percentile(101)

    def test_mean_tracks_stats(self):
        r = LatencyRecorder()
        r.record(10.0)
        r.record(20.0)
        assert r.mean == pytest.approx(15.0)
        assert r.count == 2


class TestUtilizationTracker:
    def test_fully_busy(self):
        sim = Simulator()
        u = UtilizationTracker(sim, capacity=2)
        u.set_busy(2)
        sim.run(until=10.0)
        assert u.utilization_since_start() == pytest.approx(1.0)

    def test_half_busy(self):
        sim = Simulator()
        u = UtilizationTracker(sim, capacity=2)
        u.set_busy(1)
        sim.run(until=10.0)
        assert u.utilization_since_start() == pytest.approx(0.5)

    def test_time_weighted_transitions(self):
        sim = Simulator()
        u = UtilizationTracker(sim, capacity=1)

        def proc(sim, u):
            u.set_busy(1)
            yield sim.timeout(3.0)
            u.set_busy(0)
            yield sim.timeout(7.0)

        sim.process(proc(sim, u))
        sim.run()
        assert u.utilization_since_start() == pytest.approx(0.3)

    def test_window_reset(self):
        sim = Simulator()
        u = UtilizationTracker(sim, capacity=1)

        def proc(sim, u, readings):
            u.set_busy(1)
            yield sim.timeout(5.0)
            readings.append(u.window_utilization())
            u.set_busy(0)
            yield sim.timeout(5.0)
            readings.append(u.window_utilization())

        readings = []
        sim.process(proc(sim, u, readings))
        sim.run()
        assert readings[0] == pytest.approx(1.0)
        assert readings[1] == pytest.approx(0.0)

    def test_busy_bounds_validated(self):
        sim = Simulator()
        u = UtilizationTracker(sim, capacity=2)
        with pytest.raises(ValueError):
            u.set_busy(3)
        with pytest.raises(ValueError):
            u.set_busy(-1)

    def test_adjust(self):
        sim = Simulator()
        u = UtilizationTracker(sim, capacity=4)
        u.adjust(+2)
        assert u.busy == 2
        u.adjust(-1)
        assert u.busy == 1


class TestByteCounter:
    def test_bandwidth_since_start(self):
        sim = Simulator()
        c = ByteCounter(sim)

        def proc(sim, c):
            c.record(1000)
            yield sim.timeout(2.0)
            c.record(1000)

        sim.process(proc(sim, c))
        sim.run()
        assert c.bandwidth_since_start() == pytest.approx(1000.0)
        assert c.total_messages == 2

    def test_window_bandwidth_resets(self):
        sim = Simulator()
        c = ByteCounter(sim)

        def proc(sim, c, out):
            c.record(500)
            yield sim.timeout(1.0)
            out.append(c.window_bandwidth())
            yield sim.timeout(1.0)
            out.append(c.window_bandwidth())

        out = []
        sim.process(proc(sim, c, out))
        sim.run()
        assert out[0] == pytest.approx(500.0)
        assert out[1] == pytest.approx(0.0)

    def test_negative_bytes_rejected(self):
        sim = Simulator()
        c = ByteCounter(sim)
        with pytest.raises(ValueError):
            c.record(-1)


class TestTimeSeries:
    def test_records_time_value_pairs(self):
        sim = Simulator()
        ts = TimeSeries(sim)

        def proc(sim, ts):
            ts.record(1.0)
            yield sim.timeout(2.0)
            ts.record(3.0)

        sim.process(proc(sim, ts))
        sim.run()
        assert ts.points == [(0.0, 1.0), (2.0, 3.0)]
        assert ts.mean() == pytest.approx(2.0)
        assert ts.last() == 3.0

    def test_empty_series(self):
        sim = Simulator()
        ts = TimeSeries(sim)
        assert math.isnan(ts.mean())
        assert ts.last() is None
