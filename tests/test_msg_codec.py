"""Tests for message types, sizes, and CONT/END segmentation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.msg import (
    MAX_SEGMENT_PAYLOAD,
    MSG_HEADER_SIZE,
    RESULT_SIZE,
    DeleteRequest,
    Heartbeat,
    InsertRequest,
    ResponseSegment,
    SearchRequest,
    message_size,
    reassemble,
    segment_results,
)
from repro.rtree import Rect

RECT = Rect(0.1, 0.1, 0.2, 0.2)


class TestSizes:
    def test_search_request_size(self):
        req = SearchRequest(1, RECT)
        assert req.payload_size() == 40
        assert message_size(req) == 40 + MSG_HEADER_SIZE

    def test_insert_request_size(self):
        req = InsertRequest(1, RECT, 7)
        assert req.payload_size() == 48

    def test_delete_request_size(self):
        assert DeleteRequest(1, RECT, 7).payload_size() == 48

    def test_heartbeat_size(self):
        assert Heartbeat(0.5, seq=3).payload_size() == 12

    def test_response_size_scales_with_results(self):
        empty = ResponseSegment(1, (), last=True)
        one = ResponseSegment(1, ((RECT, 5),), last=True)
        assert one.payload_size() - empty.payload_size() == RESULT_SIZE

    def test_response_msg_type_flags(self):
        from repro.msg import MSG_RESPONSE_CONT, MSG_RESPONSE_END
        assert ResponseSegment(1, (), last=True).msg_type == MSG_RESPONSE_END
        assert ResponseSegment(1, (), last=False).msg_type == MSG_RESPONSE_CONT


class TestSegmentation:
    def _results(self, n):
        return [(RECT, i) for i in range(n)]

    def test_empty_results_single_end_segment(self):
        segments = segment_results(9, [])
        assert len(segments) == 1
        assert segments[0].last
        assert segments[0].results == ()

    def test_small_result_single_segment(self):
        segments = segment_results(9, self._results(5))
        assert len(segments) == 1
        assert segments[0].last
        assert len(segments[0].results) == 5

    def test_large_result_is_segmented(self):
        per_segment = (MAX_SEGMENT_PAYLOAD - 9) // RESULT_SIZE
        segments = segment_results(9, self._results(per_segment * 3 + 1))
        assert len(segments) == 4
        assert all(not s.last for s in segments[:-1])
        assert segments[-1].last

    def test_every_segment_fits_max_payload(self):
        segments = segment_results(9, self._results(2000))
        for seg in segments:
            assert seg.payload_size() <= MAX_SEGMENT_PAYLOAD

    def test_reassemble_round_trip(self):
        results = self._results(1234)
        segments = segment_results(9, results)
        assert reassemble(segments) == results

    def test_reassemble_rejects_missing_end(self):
        segments = segment_results(9, self._results(500))
        broken = segments[:-1]
        if broken:
            with pytest.raises(ValueError):
                reassemble(broken)

    def test_reassemble_rejects_mid_end(self):
        seg_end = ResponseSegment(1, (), last=True)
        with pytest.raises(ValueError):
            reassemble([seg_end, seg_end])

    def test_reassemble_rejects_mixed_req_ids(self):
        a = ResponseSegment(1, (), last=False)
        b = ResponseSegment(2, (), last=True)
        with pytest.raises(ValueError):
            reassemble([a, b])

    def test_reassemble_empty_rejected(self):
        with pytest.raises(ValueError):
            reassemble([])

    def test_ok_flag_propagates(self):
        segments = segment_results(9, [], ok=False)
        assert not segments[0].ok

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 3000), st.integers(100, 4096))
    def test_segmentation_round_trip_property(self, n, max_payload):
        results = self._results(n)
        segments = segment_results(5, results, max_payload=max_payload)
        assert reassemble(segments) == results
        assert segments[-1].last
        assert all(not s.last for s in segments[:-1])
