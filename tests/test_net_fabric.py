"""Unit tests for wire-size accounting and fabric profiles/topology."""

import pytest

from repro.hw import Host
from repro.net import (
    ETH_1G,
    ETH_40G,
    IB_100G,
    IB_MTU,
    IB_PACKET_OVERHEAD,
    TCP_MSS,
    TCP_SEGMENT_OVERHEAD,
    Network,
    ib_wire_size,
    profile_by_name,
    tcp_wire_size,
)
from repro.sim import Simulator


class TestWireSizes:
    def test_tcp_small_message_single_segment(self):
        assert tcp_wire_size(100) == 100 + TCP_SEGMENT_OVERHEAD

    def test_tcp_empty_message_still_has_header(self):
        assert tcp_wire_size(0) == TCP_SEGMENT_OVERHEAD

    def test_tcp_segmentation(self):
        payload = TCP_MSS * 3
        assert tcp_wire_size(payload) == payload + 3 * TCP_SEGMENT_OVERHEAD
        assert (
            tcp_wire_size(payload + 1)
            == payload + 1 + 4 * TCP_SEGMENT_OVERHEAD
        )

    def test_ib_small_message(self):
        assert ib_wire_size(64) == 64 + IB_PACKET_OVERHEAD

    def test_ib_multi_packet(self):
        payload = IB_MTU * 2 + 1
        assert ib_wire_size(payload) == payload + 3 * IB_PACKET_OVERHEAD

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            tcp_wire_size(-1)
        with pytest.raises(ValueError):
            ib_wire_size(-1)


class TestProfiles:
    def test_profiles_by_name(self):
        assert profile_by_name("eth-1g") is ETH_1G
        assert profile_by_name("ib-100g") is IB_100G
        with pytest.raises(KeyError):
            profile_by_name("token-ring")

    def test_rdma_flags(self):
        assert IB_100G.rdma
        assert not ETH_1G.rdma
        assert not ETH_40G.rdma

    def test_wire_size_dispatch(self):
        assert IB_100G.wire_size(10) == ib_wire_size(10)
        assert ETH_1G.wire_size(10) == tcp_wire_size(10)

    def test_bandwidth_ordering(self):
        assert ETH_1G.bandwidth_bps < ETH_40G.bandwidth_bps < IB_100G.bandwidth_bps

    def test_latency_ordering(self):
        assert IB_100G.base_latency_s < ETH_40G.base_latency_s < ETH_1G.base_latency_s

    def test_scaled_copy(self):
        fast = IB_100G.scaled(bandwidth_bps=200e9)
        assert fast.bandwidth_bps == 200e9
        assert fast.base_latency_s == IB_100G.base_latency_s
        assert IB_100G.bandwidth_bps == 100e9  # original untouched


class TestNetworkTopology:
    def _setup(self):
        sim = Simulator()
        net = Network(sim, IB_100G)
        server = Host(sim, "server", IB_100G)
        client = Host(sim, "client", IB_100G, cores=2)
        net.attach_server(server)
        return sim, net, server, client

    def test_transfer_requires_attached_server(self):
        sim = Simulator()
        net = Network(sim, IB_100G)
        a = Host(sim, "a", IB_100G)
        b = Host(sim, "b", IB_100G)

        def proc():
            yield from net.transfer(a, b, 100)

        sim.process(proc())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_client_to_server_uses_rx(self):
        sim, net, server, client = self._setup()

        def proc():
            yield from net.transfer(client, server, 1000)

        sim.process(proc())
        sim.run()
        assert net.server_link.rx.counter.total_bytes == 1000
        assert net.server_link.tx.counter.total_bytes == 0

    def test_server_to_client_uses_tx(self):
        sim, net, server, client = self._setup()

        def proc():
            yield from net.transfer(server, client, 500)

        sim.process(proc())
        sim.run()
        assert net.server_link.tx.counter.total_bytes == 500

    def test_client_to_client_rejected(self):
        sim, net, server, client = self._setup()
        other = Host(sim, "client2", IB_100G, cores=2)

        def proc():
            yield from net.transfer(client, other, 100)

        sim.process(proc())
        with pytest.raises(ValueError):
            sim.run()

    def test_bandwidth_gbps_reporting(self):
        sim, net, server, client = self._setup()

        def proc():
            # 12.5 GB over a 12.5 GB/s link = 1 second busy
            yield from net.transfer(client, server, int(12.5e9))

        sim.process(proc())
        sim.run()
        elapsed = sim.now
        expected = 12.5e9 * 8 / elapsed / 1e9
        assert net.server_bandwidth_gbps() == pytest.approx(expected)
