"""Integration tests for the KV experiment harness (§VI extensions)."""

import pytest

from repro.cluster import KvExperimentConfig, run_kv_experiment

SMALL = dict(n_clients=4, requests_per_client=40, n_keys=3000,
             server_cores=4, heartbeat_interval=0.2e-3, seed=2)


class TestConfig:
    def test_defaults(self):
        config = KvExperimentConfig()
        assert config.index == "btree"
        assert config.adaptive is not None
        assert config.adaptive.Inv == config.heartbeat_interval

    def test_unknown_index(self):
        with pytest.raises(ValueError):
            KvExperimentConfig(index="skiplist")

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            KvExperimentConfig(scheme="quic")

    def test_cuckoo_rejects_scans(self):
        with pytest.raises(ValueError):
            KvExperimentConfig(index="cuckoo", scan_fraction=0.1)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            KvExperimentConfig(get_fraction=0.9, scan_fraction=0.2)

    def test_tcp_fabric_rejected(self):
        with pytest.raises(ValueError):
            run_kv_experiment(KvExperimentConfig(fabric="eth-1g", **SMALL))


class TestRuns:
    @pytest.mark.parametrize("index", ["btree", "cuckoo"])
    @pytest.mark.parametrize("scheme", [
        "fast-messaging", "rdma-offloading", "catfish", "catfish-bandit",
    ])
    def test_every_combination_completes(self, index, scheme):
        result = run_kv_experiment(KvExperimentConfig(
            index=index, scheme=scheme, **SMALL))
        assert result.total_requests == 4 * 40
        assert result.throughput_kops > 0
        assert result.scheme == f"{index}:{scheme}"

    def test_btree_scans_in_mix(self):
        result = run_kv_experiment(KvExperimentConfig(
            index="btree", scheme="catfish",
            get_fraction=0.6, scan_fraction=0.3, **SMALL))
        assert result.total_requests == 160

    def test_offloading_zero_cpu_with_pure_gets(self):
        result = run_kv_experiment(KvExperimentConfig(
            index="cuckoo", scheme="rdma-offloading",
            get_fraction=1.0, **SMALL))
        assert result.server_cpu_utilization == 0.0
        assert result.offload_fraction == 1.0

    def test_catfish_offloads_under_kv_saturation(self):
        config = KvExperimentConfig(
            index="btree", scheme="catfish",
            n_clients=16, requests_per_client=150, n_keys=4000,
            server_cores=1, heartbeat_interval=0.2e-3, seed=3,
        )
        result = run_kv_experiment(config)
        assert result.offload_fraction > 0.05
        assert result.heartbeats_sent > 0

    def test_reproducible(self):
        a = run_kv_experiment(KvExperimentConfig(scheme="catfish", **SMALL))
        b = run_kv_experiment(KvExperimentConfig(scheme="catfish", **SMALL))
        assert a.mean_latency_us == b.mean_latency_us

    def test_zipf_skew_changes_results(self):
        flat = run_kv_experiment(KvExperimentConfig(zipf_s=0.0, **SMALL))
        skew = run_kv_experiment(KvExperimentConfig(zipf_s=1.2, **SMALL))
        # both complete; different key streams -> different latencies
        assert flat.total_requests == skew.total_requests
        assert flat.mean_latency_us != skew.mean_latency_us
