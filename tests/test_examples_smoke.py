"""Smoke tests: the fast examples must run clean end-to-end.

The slower, sweep-style examples (geo_service, hurricane_monitor,
framework_generality) are exercised by the benchmarks that cover the same
ground; these three finish in seconds.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )


def test_quickstart():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "Catfish speedup over fast messaging" in proc.stdout
    assert "tree height" in proc.stdout


def test_adaptive_backoff_demo():
    proc = run_example("adaptive_backoff_demo.py")
    assert proc.returncode == 0, proc.stderr
    assert "SATURATED" in proc.stdout
    assert "Algorithm 1 in action" in proc.stdout


def test_nearest_neighbors():
    proc = run_example("nearest_neighbors.py")
    assert proc.returncode == 0, proc.stderr
    assert "k nearest stations" in proc.stdout
    assert "count-only" in proc.stdout
