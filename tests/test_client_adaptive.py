"""Unit tests for Algorithm 1 — the Catfish adaptive back-off client."""

import random

import pytest

from repro.client import AdaptiveParams, CatfishSession, ClientStats, Request
from repro.client.adaptive import most_recent_utilization
from repro.client.base import OP_INSERT, OP_SEARCH
from repro.msg import Heartbeat
from repro.rtree import Rect
from repro.sim import Simulator

RECT = Rect(0.1, 0.1, 0.2, 0.2)


class FakeMailbox:
    def __init__(self):
        self.value = 0.0

    def read_and_clear(self):
        value = self.value
        self.value = 0.0
        return value


class FakeFm:
    """Stands in for FmSession: records calls, exposes a mailbox."""

    def __init__(self, sim):
        self.sim = sim
        self.mailbox = FakeMailbox()
        self.calls = []

    def execute(self, request):
        self.calls.append(request)
        yield self.sim.timeout(1e-6)
        return []


class FakeEngine:
    def __init__(self, sim):
        self.sim = sim
        self.calls = []

    def search(self, rect):
        self.calls.append(rect)
        yield self.sim.timeout(1e-6)
        return []


def make_session(params=None, seed=0):
    sim = Simulator()
    fm = FakeFm(sim)
    engine = FakeEngine(sim)
    stats = ClientStats()
    session = CatfishSession(
        sim, fm, engine, stats,
        params=params or AdaptiveParams(N=8, T=0.95, Inv=1e-3),
        rng=random.Random(seed),
    )
    return sim, fm, engine, session


def drive(sim, session, n, op=OP_SEARCH, gap=2e-3):
    def proc():
        for i in range(n):
            request = (Request(op, RECT) if op == OP_SEARCH
                       else Request(op, RECT, data_id=i))
            yield from session.execute(request)
            yield sim.timeout(gap)

    done = sim.process(proc())
    sim.run_until_triggered(done)


def feed(sim, mailbox, value, until, every=1e-3):
    """Refresh the mailbox with ``value`` every ``every`` until ``until``."""
    def proc():
        while sim.now < until:
            mailbox.value = value
            yield sim.timeout(every)

    sim.process(proc())


class TestParams:
    def test_defaults_match_paper(self):
        params = AdaptiveParams()
        assert params.N == 8
        assert params.T == 0.95
        assert params.Inv == pytest.approx(10e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveParams(N=0)
        with pytest.raises(ValueError):
            AdaptiveParams(T=0.0)
        with pytest.raises(ValueError):
            AdaptiveParams(T=1.5)
        with pytest.raises(ValueError):
            AdaptiveParams(Inv=0.0)

    def test_pred_util_identity(self):
        assert most_recent_utilization(0.87) == 0.87


class TestDecision:
    def test_idle_server_stays_on_fast_messaging(self):
        sim, fm, engine, session = make_session()
        drive(sim, session, 10)
        assert len(fm.calls) == 10
        assert len(engine.calls) == 0

    def test_missing_heartbeat_means_no_offload(self):
        """Paper: no heartbeat (u_serv == 0) must NOT trigger offloading —
        the cause could be a saturated server link."""
        sim, fm, engine, session = make_session()
        fm.mailbox.value = 0.0  # nothing ever arrives
        drive(sim, session, 20)
        assert len(engine.calls) == 0

    def test_busy_heartbeat_triggers_offload_window(self):
        sim, fm, engine, session = make_session(seed=3)
        feed(sim, fm.mailbox, 0.99, until=1.0)
        drive(sim, session, 30)
        assert len(engine.calls) > 0
        assert session.busy_observations > 0

    def test_not_busy_heartbeat_keeps_fast_messaging(self):
        sim, fm, engine, session = make_session()
        feed(sim, fm.mailbox, 0.5, until=1.0)  # below T
        drive(sim, session, 20)
        assert len(engine.calls) == 0

    def test_offload_window_is_bounded_by_first_backoff(self):
        """After one busy observation, at most N-1 consecutive requests
        offload (r_off drawn from [0, N))."""
        params = AdaptiveParams(N=8, T=0.95, Inv=1e-3)
        sim, fm, engine, session = make_session(params)
        fm.mailbox.value = 0.99  # one heartbeat, never replenished
        drive(sim, session, 30)
        assert len(engine.calls) <= params.N - 1

    def test_backoff_extends_while_busy(self):
        params = AdaptiveParams(N=4, T=0.95, Inv=1e-3)
        sim, fm, engine, session = make_session(params, seed=5)
        feed(sim, fm.mailbox, 1.0, until=1.0)
        drive(sim, session, 60)
        assert session.backoff_extensions > 0
        # most requests end up offloaded under sustained saturation
        assert len(engine.calls) > 30

    def test_recovery_resets_backoff(self):
        sim, fm, engine, session = make_session(
            AdaptiveParams(N=4, T=0.95, Inv=1e-3), seed=7
        )

        def feeder():
            # busy for 20 ms, then idle
            while sim.now < 20e-3:
                fm.mailbox.value = 1.0
                yield sim.timeout(1e-3)

        sim.process(feeder())
        drive(sim, session, 40)
        assert session.r_busy == 0
        # Tail requests go back to fast messaging.
        assert fm.calls

    def test_writes_never_offloaded(self):
        sim, fm, engine, session = make_session(seed=2)
        feed(sim, fm.mailbox, 1.0, until=1.0)
        drive(sim, session, 20, op=OP_INSERT)
        assert len(engine.calls) == 0
        assert len(fm.calls) == 20

    def test_heartbeat_consumed_at_most_every_inv(self):
        """Within an Inv window the mailbox must not be re-read."""
        params = AdaptiveParams(N=8, T=0.95, Inv=5e-3)
        sim, fm, engine, session = make_session(params)
        fm.mailbox.value = 1.0
        reads = []

        original = fm.mailbox.read_and_clear

        def counting_read():
            reads.append(sim.now)
            return original()

        fm.mailbox.read_and_clear = counting_read
        # requests every 1 ms, Inv = 5 ms
        drive(sim, session, 20, gap=1e-3)
        for a, b in zip(reads, reads[1:]):
            assert b - a > params.Inv

    def test_randomized_windows_differ_across_clients(self):
        lengths = set()
        for seed in range(6):
            params = AdaptiveParams(N=8, T=0.95, Inv=1e-3)
            sim, fm, engine, session = make_session(params, seed=seed)
            fm.mailbox.value = 0.99  # a single busy observation
            drive(sim, session, 30)
            lengths.add(len(engine.calls))
        # Different clients draw different window sizes.
        assert len(lengths) > 1


class TestHeartbeatIntegration:
    def test_mailbox_deliver_and_algorithm_read(self):
        sim, fm, engine, session = make_session()
        box = FakeMailbox()
        box.value = 0.97
        assert box.read_and_clear() == 0.97
        assert box.value == 0.0
