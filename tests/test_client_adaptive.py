"""Unit tests for Algorithm 1 — the Catfish adaptive back-off client."""

import random

import pytest

from repro.client import AdaptiveParams, CatfishSession, ClientStats, Request
from repro.client.adaptive import most_recent_utilization
from repro.client.base import OP_INSERT, OP_SEARCH
from repro.msg import Heartbeat
from repro.rtree import Rect
from repro.server import HeartbeatMailbox
from repro.sim import Simulator

RECT = Rect(0.1, 0.1, 0.2, 0.2)


def beat(mailbox, utilization):
    """Deliver one fresh heartbeat (advancing the mailbox sequence)."""
    mailbox.deliver(Heartbeat(utilization, seq=mailbox.seq + 1))


class FakeFm:
    """Stands in for FmSession: records calls, exposes a real mailbox."""

    def __init__(self, sim):
        self.sim = sim
        self.mailbox = HeartbeatMailbox()
        self.calls = []

    def execute(self, request):
        self.calls.append(request)
        yield self.sim.timeout(1e-6)
        return []


class FakeEngine:
    def __init__(self, sim):
        self.sim = sim
        self.calls = []

    def search(self, rect):
        self.calls.append(rect)
        yield self.sim.timeout(1e-6)
        return []


def make_session(params=None, seed=0):
    sim = Simulator()
    fm = FakeFm(sim)
    engine = FakeEngine(sim)
    stats = ClientStats()
    session = CatfishSession(
        sim, fm, engine, stats,
        params=params or AdaptiveParams(N=8, T=0.95, Inv=1e-3),
        rng=random.Random(seed),
    )
    return sim, fm, engine, session


def drive(sim, session, n, op=OP_SEARCH, gap=2e-3):
    def proc():
        for i in range(n):
            request = (Request(op, RECT) if op == OP_SEARCH
                       else Request(op, RECT, data_id=i))
            yield from session.execute(request)
            yield sim.timeout(gap)

    done = sim.process(proc())
    sim.run_until_triggered(done)


def feed(sim, mailbox, value, until, every=1e-3):
    """Deliver a fresh ``value`` heartbeat every ``every`` until ``until``."""
    def proc():
        while sim.now < until:
            beat(mailbox, value)
            yield sim.timeout(every)

    sim.process(proc())


class TestParams:
    def test_defaults_match_paper(self):
        params = AdaptiveParams()
        assert params.N == 8
        assert params.T == 0.95
        assert params.Inv == pytest.approx(10e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveParams(N=0)
        with pytest.raises(ValueError):
            AdaptiveParams(T=0.0)
        with pytest.raises(ValueError):
            AdaptiveParams(T=1.5)
        with pytest.raises(ValueError):
            AdaptiveParams(Inv=0.0)

    def test_pred_util_identity(self):
        assert most_recent_utilization(0.87) == 0.87


class TestDecision:
    def test_idle_server_stays_on_fast_messaging(self):
        sim, fm, engine, session = make_session()
        drive(sim, session, 10)
        assert len(fm.calls) == 10
        assert len(engine.calls) == 0

    def test_missing_heartbeat_means_no_offload(self):
        """Paper: no heartbeat must NOT trigger offloading — the cause
        could be a saturated server link."""
        sim, fm, engine, session = make_session()
        drive(sim, session, 20)  # nothing ever arrives
        assert len(engine.calls) == 0
        assert session.heartbeats_missing > 0
        assert session.heartbeats_consumed == 0

    def test_busy_heartbeat_triggers_offload_window(self):
        sim, fm, engine, session = make_session(seed=3)
        feed(sim, fm.mailbox, 0.99, until=1.0)
        drive(sim, session, 30)
        assert len(engine.calls) > 0
        assert session.busy_observations > 0

    def test_not_busy_heartbeat_keeps_fast_messaging(self):
        sim, fm, engine, session = make_session()
        feed(sim, fm.mailbox, 0.5, until=1.0)  # below T
        drive(sim, session, 20)
        assert len(engine.calls) == 0

    def test_offload_window_is_bounded_by_first_backoff(self):
        """After one busy observation, at most N-1 consecutive requests
        offload (r_off drawn from [0, N))."""
        params = AdaptiveParams(N=8, T=0.95, Inv=1e-3)
        sim, fm, engine, session = make_session(params)
        beat(fm.mailbox, 0.99)  # one heartbeat, never replenished
        drive(sim, session, 30)
        assert len(engine.calls) <= params.N - 1

    def test_backoff_extends_while_busy(self):
        params = AdaptiveParams(N=4, T=0.95, Inv=1e-3)
        sim, fm, engine, session = make_session(params, seed=5)
        feed(sim, fm.mailbox, 1.0, until=1.0)
        drive(sim, session, 60)
        assert session.backoff_extensions > 0
        # most requests end up offloaded under sustained saturation
        assert len(engine.calls) > 30

    def test_recovery_resets_backoff(self):
        sim, fm, engine, session = make_session(
            AdaptiveParams(N=4, T=0.95, Inv=1e-3), seed=7
        )

        def feeder():
            # busy for 20 ms, then idle
            while sim.now < 20e-3:
                beat(fm.mailbox, 1.0)
                yield sim.timeout(1e-3)

        sim.process(feeder())
        drive(sim, session, 40)
        assert session.r_busy == 0
        # Tail requests go back to fast messaging.
        assert fm.calls

    def test_writes_never_offloaded(self):
        sim, fm, engine, session = make_session(seed=2)
        feed(sim, fm.mailbox, 1.0, until=1.0)
        drive(sim, session, 20, op=OP_INSERT)
        assert len(engine.calls) == 0
        assert len(fm.calls) == 20

    def test_heartbeat_consumed_at_most_every_inv(self):
        """Within an Inv window the mailbox must not be re-consumed."""
        params = AdaptiveParams(N=8, T=0.95, Inv=5e-3)
        sim, fm, engine, session = make_session(params)
        feed(sim, fm.mailbox, 1.0, until=1.0)
        reads = []

        original = fm.mailbox.consume_fresh

        def counting_consume(last_seq):
            result = original(last_seq)
            if result is not None:
                reads.append(sim.now)
            return result

        fm.mailbox.consume_fresh = counting_consume
        # requests every 1 ms, Inv = 5 ms
        drive(sim, session, 20, gap=1e-3)
        assert reads
        for a, b in zip(reads, reads[1:]):
            assert b - a > params.Inv

    def test_randomized_windows_differ_across_clients(self):
        lengths = set()
        for seed in range(6):
            params = AdaptiveParams(N=8, T=0.95, Inv=1e-3)
            sim, fm, engine, session = make_session(params, seed=seed)
            beat(fm.mailbox, 0.99)  # a single busy observation
            drive(sim, session, 30)
            lengths.add(len(engine.calls))
        # Different clients draw different window sizes.
        assert len(lengths) > 1


class _MaxDrawRng:
    """Deterministic rng: randrange(n) always draws the maximum n-1."""

    def randrange(self, n):
        return n - 1


class TestAlgorithmEdgeCases:
    """Algorithm 1 boundary behavior, driven through _decide directly."""

    @staticmethod
    def _force_inv_elapsed(session):
        # Make `now - t0 > Inv` true without running the event loop.
        session._t0 = -10.0 * session.params.Inv

    def test_utilization_exactly_at_threshold_is_not_busy(self):
        """The busy test is strictly `U > T`; a reading of exactly T must
        not open an offload window."""
        sim, fm, engine, session = make_session()
        self._force_inv_elapsed(session)
        beat(fm.mailbox, session.params.T)
        assert session._decide() is False
        assert session.r_busy == 0
        assert session.busy_observations == 0
        # ... but the heartbeat itself was consumed (it was fresh).
        assert session.heartbeats_consumed == 1

    def test_just_above_threshold_is_busy(self):
        sim, fm, engine, session = make_session()
        self._force_inv_elapsed(session)
        beat(fm.mailbox, session.params.T + 1e-9)
        session._decide()
        assert session.r_busy == 1

    def test_backoff_window_within_documented_bounds(self):
        """The k-th consecutive busy draw lands in [(k-1)*N, k*N)."""
        params = AdaptiveParams(N=8, T=0.95, Inv=1e-3)
        sim, fm, engine, session = make_session(params)
        session.rng = _MaxDrawRng()
        for expected_r_busy in (1, 2, 3, 4):
            self._force_inv_elapsed(session)
            beat(fm.mailbox, 1.0)
            offloaded = session._decide()
            assert session.r_busy == expected_r_busy
            # _decide drained one unit before returning; undo it.
            drawn = session.r_off + (1 if offloaded else 0)
            lo = (expected_r_busy - 1) * params.N
            hi = expected_r_busy * params.N
            assert lo <= drawn < hi

    def test_reset_on_non_busy_heartbeat(self):
        params = AdaptiveParams(N=8, T=0.95, Inv=1e-3)
        sim, fm, engine, session = make_session(params)
        self._force_inv_elapsed(session)
        beat(fm.mailbox, 1.0)
        session._decide()
        assert session.r_busy == 1
        self._force_inv_elapsed(session)
        beat(fm.mailbox, 0.3)
        session._decide()
        assert session.r_busy == 0

    def test_fresh_zero_utilization_heartbeat_is_consumed(self):
        """The seq-based fix: a genuine heartbeat reporting exactly 0.0
        utilization is a real observation, not a missing heartbeat."""
        sim, fm, engine, session = make_session()
        self._force_inv_elapsed(session)
        beat(fm.mailbox, 0.0)
        assert session._decide() is False
        assert session.heartbeats_consumed == 1
        assert session.heartbeats_missing == 0
        # Consuming advanced the Inv clock: the next decide within Inv
        # does not consume again.
        beat(fm.mailbox, 1.0)
        assert session._decide() is False
        assert session.heartbeats_consumed == 1

    def test_duplicate_seq_reads_as_missing(self):
        """A replayed heartbeat (same seq) must not be consumed twice —
        even though its utilization value is nonzero."""
        sim, fm, engine, session = make_session()
        self._force_inv_elapsed(session)
        fm.mailbox.deliver(Heartbeat(0.99, seq=1))
        session._decide()
        assert session.heartbeats_consumed == 1
        self._force_inv_elapsed(session)
        fm.mailbox.deliver(Heartbeat(0.99, seq=1))  # replay, not fresh
        budget_before = session.r_off
        session._decide()
        assert session.heartbeats_consumed == 1
        assert session.heartbeats_missing == 1
        # Missing heartbeat resets the busy streak; any remaining budget
        # drains without extension.
        assert session.r_busy == 0
        assert session.r_off == max(budget_before - 1, 0)

    def test_missing_heartbeat_never_offloads_without_budget(self):
        """With no budget left, missing heartbeats mean fast messaging
        forever — never offload on silence."""
        sim, fm, engine, session = make_session()
        for _ in range(50):
            self._force_inv_elapsed(session)
            assert session._decide() is False
        assert session.heartbeats_missing == 50


class TestHeartbeatIntegration:
    def test_mailbox_deliver_and_algorithm_read(self):
        box = HeartbeatMailbox()
        box.deliver(Heartbeat(0.97, seq=1))
        assert box.read_and_clear() == 0.97
        assert box.value == 0.0

    def test_consume_fresh_distinguishes_empty_from_zero(self):
        box = HeartbeatMailbox()
        assert box.consume_fresh(-1) is None  # truly empty
        box.deliver(Heartbeat(0.0, seq=1))
        fresh = box.consume_fresh(-1)
        assert fresh == (1, 0.0)  # genuine 0.0-utilization heartbeat
        assert box.consume_fresh(1) is None  # consumed: not fresh anymore

    def test_consume_fresh_clears_value(self):
        box = HeartbeatMailbox()
        box.deliver(Heartbeat(0.8, seq=3))
        assert box.consume_fresh(-1) == (3, 0.8)
        assert box.value == 0.0
        assert box.seq == 3
