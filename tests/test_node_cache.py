"""Client-side node cache: unit behaviour, coalescing, hints, exactness.

Covers the cache's consistency model (high-water-mark stamping), the
single-flight/doorbell read paths, the heartbeat invalidation-hint
plumbing (including wire-format backward compatibility and the
``consume_fresh`` edge cases), and end-to-end exactness of cache-served
searches against the server tree — including under a write-storm fault
scenario.
"""

import pytest

from repro.client import ClientStats, OffloadEngine
from repro.client.node_cache import HWM_UNKNOWN, NodeCache, NodeCacheConfig
from repro.hw import Host
from repro.msg.codec import Heartbeat, message_size
from repro.net import IB_100G, Network
from repro.obs import MetricsRegistry
from repro.obs.trace import Tracer
from repro.rtree import Rect
from repro.rtree.serialize import NodeView
from repro.server import RTreeServer
from repro.server.heartbeat import HeartbeatMailbox
from repro.sim import Simulator
from repro.transport import connect
from repro.workloads import uniform_dataset


def make_view(chunk_id=7, level=1, torn=False):
    return NodeView(
        level=level, chunk_id=chunk_id,
        entries=((Rect(0, 0, 1, 1), 3),), version=2, torn=torn,
    )


def make_offload(n_items=1500, max_entries=16, cache=None, multi_issue=True,
                 tracer=None, seed=7):
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=4)
    net.attach_server(server_host)
    items = uniform_dataset(n_items, seed=seed)
    server = RTreeServer(sim, server_host, items, max_entries=max_entries)
    client_host = Host(sim, "client", IB_100G, cores=2)
    client_qp, _server_qp = connect(sim, net, client_host, server_host)
    stats = ClientStats()
    engine = OffloadEngine(
        sim, client_qp, server.offload_descriptor(), server.costs, stats,
        multi_issue=multi_issue, tracer=tracer, cache=cache,
    )
    return sim, server, engine, stats, client_qp


# -- NodeCache unit behaviour ------------------------------------------------

def test_cache_config_validation():
    with pytest.raises(ValueError):
        NodeCacheConfig(max_nodes=0)
    assert NodeCacheConfig().enabled


def test_cache_refuses_stores_before_first_hwm():
    cache = NodeCache()
    assert cache.server_hwm == HWM_UNKNOWN
    assert not cache.store(make_view())
    assert len(cache) == 0


def test_cache_refuses_leaves_and_torn_views():
    cache = NodeCache()
    cache.note_server_hwm(0)
    assert not cache.store(make_view(level=0))
    assert not cache.store(make_view(torn=True))
    assert cache.store(make_view(level=1))
    assert len(cache) == 1


def test_cache_hit_then_invalidation_on_hwm_advance():
    cache = NodeCache()
    cache.note_server_hwm(3)
    view = make_view(chunk_id=9)
    assert cache.store(view)
    assert cache.lookup(9) is view
    assert int(cache.hits) == 1
    # A mutation advanced the mark: the entry may describe a stale tree.
    assert cache.note_server_hwm(4)
    assert cache.lookup(9) is None
    assert int(cache.invalidations) == 1
    assert int(cache.misses) == 1
    # A regressed / equal mark is ignored (marks are monotone).
    assert not cache.note_server_hwm(4)
    assert not cache.note_server_hwm(2)


def test_cache_store_refuses_stale_stamp():
    # The fetcher captured the mark before posting its read; the mark
    # moved while the read was in flight -> the view may be pre-mutation
    # content and must not be stamped as current.
    cache = NodeCache()
    cache.note_server_hwm(5)
    assert not cache.store(make_view(), stamp=4)
    assert len(cache) == 0


def test_cache_lru_eviction_bound():
    cache = NodeCache(NodeCacheConfig(max_nodes=2))
    cache.note_server_hwm(0)
    for cid in (1, 2, 3):
        assert cache.store(make_view(chunk_id=cid))
    assert len(cache) == 2
    assert int(cache.evictions) == 1
    assert cache.lookup(1) is None  # oldest evicted
    assert cache.lookup(3) is not None


def test_cache_metrics_registration():
    cache = NodeCache()
    cache.note_server_hwm(2)
    cache.store(make_view())
    registry = MetricsRegistry()
    cache.register_metrics(registry)
    snap = registry.snapshot()
    assert snap["cache.stores"]["value"] == 1
    assert snap["cache.resident_nodes"]["value"] == 1
    assert snap["cache.server_hwm"]["value"] == 2


# -- heartbeat hint plumbing + wire compatibility ----------------------------

def test_heartbeat_payload_size_backward_compatible():
    legacy = Heartbeat(utilization=0.5, seq=3)
    hinted = Heartbeat(utilization=0.5, seq=3, mut_seq=17)
    assert legacy.mut_seq is None
    assert legacy.payload_size() == 12  # unchanged legacy wire format
    assert hinted.payload_size() == 20  # +u64 hint extension
    assert message_size(hinted) == message_size(legacy) + 8


def test_mailbox_applies_hints_and_legacy_beats_do_not():
    mailbox = HeartbeatMailbox()
    seen = []
    mailbox.attach_hint_sink(seen.append)
    mailbox.deliver(Heartbeat(utilization=0.1, seq=1))
    assert mailbox.mut_hint is None and seen == []
    mailbox.deliver(Heartbeat(utilization=0.2, seq=2, mut_seq=11))
    assert mailbox.mut_hint == 11 and seen == [11]


def test_hint_sink_flushes_cache_on_delivery():
    mailbox = HeartbeatMailbox()
    cache = NodeCache()
    mailbox.attach_hint_sink(cache.apply_hint)
    mailbox.deliver(Heartbeat(utilization=0.0, seq=1, mut_seq=0))
    cache.store(make_view())
    assert len(cache) == 1
    mailbox.deliver(Heartbeat(utilization=0.0, seq=2, mut_seq=5))
    assert len(cache) == 0
    assert cache.server_hwm == 5
    assert int(cache.hint_flushes) == 2


def test_consume_fresh_empty_mailbox_and_equal_seq():
    mailbox = HeartbeatMailbox()
    # Nothing ever delivered: missing, whatever last_seq the caller has.
    assert mailbox.consume_fresh(-1) is None
    assert mailbox.consume_fresh(-5) is None
    mailbox.deliver(Heartbeat(utilization=0.4, seq=7))
    assert mailbox.consume_fresh(7) is None  # already consumed seq
    assert mailbox.consume_fresh(6) == (7, 0.4)


def test_consume_fresh_genuine_zero_utilization_beat():
    # A 0.0-utilization beat is *fresh*, not missing — distinguishable
    # only via the sequence number.
    mailbox = HeartbeatMailbox()
    mailbox.deliver(Heartbeat(utilization=0.0, seq=1))
    assert mailbox.consume_fresh(-1) == (1, 0.0)
    assert mailbox.consume_fresh(1) is None


def test_consume_fresh_regressed_seq_after_server_restart():
    mailbox = HeartbeatMailbox()
    mailbox.deliver(Heartbeat(utilization=0.9, seq=40))
    assert mailbox.consume_fresh(-1) == (40, 0.9)
    # Server restarted; its counter reset.  The first post-restart beat
    # must be consumed as fresh, not read as missing for 40 ticks.
    mailbox.deliver(Heartbeat(utilization=0.3, seq=1))
    assert mailbox.consume_fresh(40) == (1, 0.3)
    assert mailbox.consume_fresh(1) is None


# -- engine integration: exactness, savings, coalescing ----------------------

@pytest.mark.parametrize("multi_issue", [False, True])
@pytest.mark.parametrize("query", [
    Rect(0, 0, 1, 1),
    Rect(0.25, 0.25, 0.5, 0.5),
    Rect(0.9, 0.9, 0.90001, 0.90001),
])
def test_cached_search_matches_server_search(multi_issue, query):
    sim, server, engine, stats, _qp = make_offload(
        cache=NodeCache(), multi_issue=multi_issue,
    )

    def client():
        first = yield from engine.search(query)
        second = yield from engine.search(query)
        return first, second

    p = sim.process(client())
    sim.run()
    expected = sorted(server.tree.search(query).data_ids)
    first, second = p.value
    assert sorted(i for _r, i in first) == expected
    assert sorted(i for _r, i in second) == expected
    # Upper levels of the repeat traversal came from the cache.
    assert int(engine.cache.hits) > 0


def test_cache_saves_chunk_fetches_on_repeat_searches():
    # Narrow query: the traversal is mostly upper levels (root +
    # internals + one or two leaves), the regime the cache targets.
    query = Rect(0.2, 0.2, 0.23, 0.23)

    def fetches(cache):
        sim, server, engine, stats, _qp = make_offload(cache=cache)

        def client():
            for _ in range(10):
                yield from engine.search(query)

        sim.process(client())
        sim.run()
        return int(engine.chunks_fetched)

    without = fetches(None)
    with_cache = fetches(NodeCache())
    # Repeat traversals serve the upper levels locally: >= 30% fewer
    # one-sided reads (the acceptance floor; in practice much more).
    assert with_cache <= without * 0.7, (with_cache, without)


def test_cached_search_exact_after_inserts():
    sim, server, engine, stats, _qp = make_offload(cache=NodeCache())
    query = Rect(0.3, 0.3, 0.7, 0.7)

    def client():
        warm = yield from engine.search(query)
        # Mutate the tree between searches (bumps mut_hwm); the next
        # search's meta read must flush the now-stale upper levels.
        for i in range(40):
            x = 0.3 + (i % 20) * 0.02
            server.tree.insert(Rect(x, x, x + 0.001, x + 0.001), 90_000 + i)
        after = yield from engine.search(query)
        return warm, after

    p = sim.process(client())
    sim.run()
    _warm, after = p.value
    expected = sorted(server.tree.search(query).data_ids)
    assert sorted(i for _r, i in after) == expected
    assert int(engine.cache.invalidations) > 0


def test_nearest_uses_cache_and_matches_oracle():
    sim, server, engine, stats, _qp = make_offload(cache=NodeCache())

    def client():
        first = yield from engine.nearest(0.5, 0.5, k=5)
        second = yield from engine.nearest(0.5, 0.5, k=5)
        return first, second

    p = sim.process(client())
    sim.run()
    first, second = p.value
    expected = sorted(server.tree.nearest(0.5, 0.5, k=5).data_ids)
    assert sorted(i for _r, i in first) == expected
    assert sorted(i for _r, i in second) == expected
    assert int(engine.cache.hits) > 0


def test_concurrent_same_chunk_fetches_coalesce():
    sim, server, engine, stats, _qp = make_offload(cache=NodeCache())
    query = Rect(0.4, 0.4, 0.42, 0.42)

    def client():
        yield from engine.search(query)

    # Two concurrent searches race for the same (uncached) chunks: the
    # single-flight table must share the in-flight reads.
    sim.process(client())
    sim.process(client())
    sim.run()
    assert int(engine.cache.coalesced_reads) > 0
    # Both searches completed and were counted.
    assert int(stats.offloaded_requests) == 2


def test_cache_disabled_engine_has_no_single_flight_table():
    _sim, _server, engine, _stats, _qp = make_offload(cache=None)
    assert engine.cache is None
    assert engine._inflight_reads is None


# -- doorbell batching -------------------------------------------------------

def test_post_read_batch_counts_and_completes():
    sim, server, engine, stats, qp = make_offload()
    desc = engine.desc
    reads = [
        (desc.tree_rkey, desc.tree_base + cid * desc.chunk_bytes,
         desc.chunk_bytes)
        for cid in (0, 1, 2)
    ]

    def client():
        events = qp.post_read_batch(reads)
        assert len(events) == 3
        results = []
        for event in events:
            data = yield event
            results.append(data)
        return results

    p = sim.process(client())
    sim.run()
    assert len(p.value) == 3
    assert qp.read_batches == 1
    assert qp.reads_posted == 3


def test_post_read_batch_rejects_bad_length_and_empty():
    sim, server, engine, stats, qp = make_offload()
    with pytest.raises(ValueError):
        qp.post_read_batch([(1, 0, 0)])
    assert qp.post_read_batch([]) == []
    assert qp.read_batches == 0


def test_batched_reads_charge_one_post_overhead():
    # WQE i>0 of a batch skips the per-post software overhead, so the
    # batch's last completion lands earlier than individually-posted
    # concurrent reads of the same chunks.
    def last_completion(batched):
        sim, server, engine, stats, qp = make_offload()
        desc = engine.desc
        reads = [
            (desc.tree_rkey, desc.tree_base + cid * desc.chunk_bytes,
             desc.chunk_bytes)
            for cid in (0, 1, 2)
        ]

        def client():
            if batched:
                events = qp.post_read_batch(reads)
            else:
                events = [qp.post_read(*r) for r in reads]
            for event in events:
                yield event
            return sim.now

        p = sim.process(client())
        sim.run()
        return p.value

    assert last_completion(True) < last_completion(False)


# -- satellite fixes: retry split, backoff, span hygiene ---------------------

def test_level_mismatch_counted_separately_from_torn():
    sim, server, engine, stats, _qp = make_offload()
    root = server.tree.root

    def client():
        # Ask for the root chunk at a deliberately wrong level: every
        # attempt returns a valid (untorn) view at the wrong level.
        view = yield from engine._read_valid(root.chunk_id, root.level + 1)
        return view

    p = sim.process(client())
    sim.run()
    assert p.value is None
    assert int(stats.level_mismatch_retries) == engine.max_read_retries
    assert int(stats.torn_retries) == 0


def test_read_valid_skips_backoff_after_final_attempt():
    # Reads are deterministic, so the elapsed-time difference between a
    # backoff of B and a backoff of 0 isolates the total backoff slept.
    def elapsed(backoff):
        sim, server, engine, stats, _qp = make_offload()
        engine.retry_backoff = backoff
        root = server.tree.root

        def timed():
            t0 = sim.now
            yield from engine._read_valid(root.chunk_id, root.level + 1)
            return sim.now - t0

        p = sim.process(timed())
        sim.run()
        return p.value

    backoff = 1e-6
    slept = elapsed(backoff) - elapsed(0.0)
    n = 8  # the engine's default max_read_retries
    # Attempts 0..n-2 sleep backoff*(attempt+1); the final attempt must
    # not sleep (the caller restarts or fails immediately).
    expected = backoff * sum(range(1, n))
    with_final = backoff * sum(range(1, n + 1))
    assert abs(slept - expected) < backoff * 0.5, (slept, expected)
    assert slept < with_final


def test_search_span_ended_when_exception_escapes():
    sim, server, engine, stats, _qp = make_offload()
    tracer = Tracer(sim)
    engine.tracer = tracer

    def boom(query):
        raise RuntimeError("injected")
        yield  # pragma: no cover - makes this a generator

    engine._search_multi_issue = boom

    def client():
        try:
            yield from engine.search(Rect(0, 0, 1, 1))
        except RuntimeError:
            return "raised"

    p = sim.process(client())
    sim.run()
    assert p.value == "raised"
    spans = tracer.spans()
    assert spans, "no spans recorded"
    for events in spans.values():
        names = [e.name for e in events]
        assert "end" in names, f"span leaked: {names}"
    (end_event,) = [e for events in spans.values() for e in events
                    if e.name == "end"]
    assert end_event.attrs["error"] == "RuntimeError"


def test_nearest_span_parity_with_search():
    sim, server, engine, stats, _qp = make_offload()
    tracer = Tracer(sim)
    engine.tracer = tracer

    def client():
        yield from engine.nearest(0.5, 0.5, k=3)

    sim.process(client())
    sim.run()
    spans = tracer.spans()
    begin = [e for events in spans.values() for e in events
             if e.name == "begin"]
    assert any(e.attrs.get("op") == "nearest" for e in begin)
    ends = [e for events in spans.values() for e in events
            if e.name == "end"]
    assert ends and all("error" not in (e.attrs or {}) for e in ends)


# -- chaos: exactness under a write storm ------------------------------------

def test_write_storm_scenario_exact_with_cache_enabled():
    from repro.faults.scenarios import run_scenario

    report = run_scenario(
        "write-storm", seed=0, n_clients=2, requests_per_client=100,
        dataset_size=1000, node_cache=NodeCacheConfig(),
    )
    assert report.mismatches == 0
    assert report.ok, report.failures
