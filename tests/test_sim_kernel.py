"""Unit tests for the DES kernel (events, processes, composites)."""

import pytest

from repro.sim import (
    Interrupt,
    SimulationError,
    Simulator,
    all_of,
    any_of,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5.0)
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 5.0
    assert sim.now == 5.0


def test_zero_delay_timeout_runs_at_same_instant():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(0.0)
        seen.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert seen == [0.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc(sim):
        value = yield sim.timeout(1.0, value="payload")
        got.append(value)

    sim.process(proc(sim))
    sim.run()
    assert got == ["payload"]


def test_process_return_value_via_yield():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(3.0)
        return 42

    def parent(sim):
        result = yield sim.process(child(sim))
        return result * 2

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == 84


def test_events_process_in_fifo_order_at_same_time():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ["a", "b", "c"]:
        sim.process(proc(sim, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_manual_event_succeed():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter(sim, ev):
        value = yield ev
        got.append((sim.now, value))

    def trigger(sim, ev):
        yield sim.timeout(2.0)
        ev.succeed("done")

    sim.process(waiter(sim, ev))
    sim.process(trigger(sim, ev))
    sim.run()
    assert got == [(2.0, "done")]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter(sim, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim, ev))
    ev.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces_from_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("exploded")

    sim.process(bad(sim))
    with pytest.raises(ValueError, match="exploded"):
        sim.run()


def test_waited_on_process_exception_propagates_to_parent():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("inner")

    def parent(sim):
        try:
            yield sim.process(bad(sim))
        except ValueError:
            return "handled"

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "handled"


def test_yield_non_event_is_an_error():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(SimulationError, match="not an Event"):
        sim.run()


def test_run_until_stops_clock_at_until():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(100.0)

    sim.process(proc(sim))
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_run_until_triggered_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(7.0)
        return "finished"

    p = sim.process(proc(sim))
    assert sim.run_until_triggered(p) == "finished"
    assert sim.now == 7.0


def test_run_until_triggered_detects_starvation():
    sim = Simulator()
    ev = sim.event()  # never triggered
    with pytest.raises(SimulationError, match="drained"):
        sim.run_until_triggered(ev)


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as exc:
            log.append((sim.now, exc.cause))

    def interrupter(sim, victim):
        yield sim.timeout(3.0)
        victim.interrupt(cause="wake-up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [(3.0, "wake-up")]


def test_interrupt_dead_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_is_alive_transitions():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.0)

    p = sim.process(proc(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_all_of_collects_values_in_order():
    sim = Simulator()

    def child(sim, delay, value):
        yield sim.timeout(delay)
        return value

    def parent(sim):
        procs = [
            sim.process(child(sim, 3.0, "slow")),
            sim.process(child(sim, 1.0, "fast")),
        ]
        values = yield all_of(sim, procs)
        return values

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == ["slow", "fast"]
    assert sim.now == 3.0


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()

    def parent(sim):
        values = yield all_of(sim, [])
        return (sim.now, values)

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == (0.0, [])


def test_all_of_propagates_failure():
    sim = Simulator()

    def ok(sim):
        yield sim.timeout(1.0)

    def bad(sim):
        yield sim.timeout(2.0)
        raise RuntimeError("child failed")

    def parent(sim):
        try:
            yield all_of(sim, [sim.process(ok(sim)), sim.process(bad(sim))])
        except RuntimeError:
            return "caught"

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "caught"


def test_any_of_returns_first_with_index():
    sim = Simulator()

    def child(sim, delay, value):
        yield sim.timeout(delay)
        return value

    def parent(sim):
        procs = [
            sim.process(child(sim, 5.0, "slow")),
            sim.process(child(sim, 2.0, "fast")),
        ]
        index, value = yield any_of(sim, procs)
        return (sim.now, index, value)

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == (2.0, 1, "fast")


def test_any_of_empty_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        any_of(sim, [])


def test_nested_processes_three_deep():
    sim = Simulator()

    def leaf(sim):
        yield sim.timeout(1.0)
        return 1

    def middle(sim):
        value = yield sim.process(leaf(sim))
        yield sim.timeout(1.0)
        return value + 1

    def root(sim):
        value = yield sim.process(middle(sim))
        return value + 1

    p = sim.process(root(sim))
    sim.run()
    assert p.value == 3
    assert sim.now == 2.0


def test_yielding_already_processed_event_resumes_immediately():
    sim = Simulator()

    def proc(sim, ev):
        yield sim.timeout(5.0)
        value = yield ev  # triggered long ago
        return (sim.now, value)

    ev = sim.event()
    ev.succeed("early")
    p = sim.process(proc(sim, ev))
    sim.run()
    assert p.value == (5.0, "early")


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(4.0)
    assert sim.peek == 4.0
    sim2 = Simulator()
    assert sim2.peek == float("inf")


def test_step_on_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_interrupt_delivered_inside_resource_wait():
    """Interrupting a process waiting on a resource releases cleanly."""
    from repro.sim import Resource

    sim = Simulator()
    res = Resource(sim, capacity=1)
    outcome = []

    def holder(sim, res):
        with res.request() as req:
            yield req
            yield sim.timeout(100.0)

    def waiter(sim, res):
        req = res.request()
        try:
            yield req
        except Interrupt:
            req.release()  # cancel the queued claim
            outcome.append("interrupted")

    def interrupter(sim, victim):
        yield sim.timeout(2.0)
        victim.interrupt()

    sim.process(holder(sim, res))
    victim = sim.process(waiter(sim, res))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert outcome == ["interrupted"]
    assert res.queue_length == 0


def test_process_finishing_at_same_instant_as_interrupt():
    """An interrupt scheduled for the instant a process dies must not
    crash the kernel (the stale wake-up is discarded)."""
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    def interrupter(sim, victim):
        yield sim.timeout(1.0)
        if victim.is_alive:
            victim.interrupt()

    victim = sim.process(quick(sim))
    sim.process(interrupter(sim, victim))
    sim.run()  # must simply not raise
    assert not victim.is_alive


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_many_processes_scale():
    sim = Simulator()
    done = []

    def proc(sim, i):
        yield sim.timeout(float(i % 17))
        done.append(i)

    for i in range(1000):
        sim.process(proc(sim, i))
    sim.run()
    assert len(done) == 1000


# -- edge cases around the optimized fast paths ------------------------------


def test_interrupt_at_same_instant_as_abandoned_trigger():
    """Interrupt delivered at the very instant the abandoned event fires.

    The interrupter runs first at t=5 (created first, so its timeout pops
    first) and interrupts the victim; the victim's own t=5 timeout — now
    abandoned — pops at the same instant and must be discarded as a stale
    wake-up, resuming the victim exactly once (with the Interrupt).
    """
    sim = Simulator()
    events = []

    def interrupter(sim, get_victim):
        yield sim.timeout(5.0)
        get_victim().interrupt(cause="now")

    def victim(sim):
        try:
            yield sim.timeout(5.0)
            events.append("timeout")
        except Interrupt as exc:
            events.append(("interrupted", exc.cause, sim.now))
        # Keep living past the instant so the stale trigger has a live
        # process to (wrongly) wake; it must not.
        yield sim.timeout(1.0)
        events.append("done")

    holder = {}
    sim.process(interrupter(sim, lambda: holder["v"]))
    holder["v"] = sim.process(victim(sim))
    sim.run()
    assert events == [("interrupted", "now", 5.0), "done"]


def test_timeout_pooling_returns_fresh_values():
    """Recycled Timeout instances must be indistinguishable from fresh
    ones: every wait sees exactly the value/delay it asked for."""
    sim = Simulator()
    seen = []

    def looper(sim, n):
        for i in range(n):
            value = yield sim.timeout(0.25, value=("tick", i))
            seen.append((sim.now, value))

    sim.process(looper(sim, 200))
    sim.run()
    assert len(seen) == 200
    for i, (now, value) in enumerate(seen):
        assert value == ("tick", i)
        assert now == pytest.approx(0.25 * (i + 1))


def test_timeout_pool_reuses_instances():
    """After a timeout is processed its instance may be recycled; a
    subsequent sim.timeout() must still behave like a brand-new event."""
    sim = Simulator()
    first = sim.timeout(1.0, value="a")
    sim.run()
    second = sim.timeout(2.0, value="b")
    assert second.triggered and not second.processed
    assert second.delay == 2.0
    sim.run()
    assert second.value == "b"
    assert sim.now == 3.0
    # Whether or not `second is first`, the observable state is fresh.
    assert first.delay in (1.0, 2.0)


def test_run_until_processes_event_exactly_at_until():
    """run(until=t) must still process an event scheduled exactly at t."""
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(10.0)
        fired.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=10.0)
    assert fired == [10.0]
    assert sim.now == 10.0
    # And an event strictly after `until` is left on the queue.
    sim2 = Simulator()

    def late(sim):
        yield sim.timeout(10.0000001)
        fired.append("late")

    sim2.process(late(sim2))
    sim2.run(until=10.0)
    assert "late" not in fired
    assert sim2.now == 10.0


def test_finished_process_with_no_waiter_is_processed_immediately():
    """A process nobody waits on skips its no-op queue entry; yielding it
    afterwards must still return its value through the processed path."""
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)
        return "result"

    got = []

    def late_waiter(sim, proc):
        yield sim.timeout(5.0)  # long after the worker finished
        value = yield proc
        got.append(value)

    p = sim.process(worker(sim))
    sim.process(late_waiter(sim, p))
    sim.run()
    assert p.processed
    assert got == ["result"]


def test_failed_process_with_no_waiter_still_crashes_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    sim.process(bad(sim))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()
