"""B+tree chunk codec + byte-mode offloading."""

import random

import pytest

from repro.btree import BPlusTree, BTreeOffloadEngine, BTreeService
from repro.btree.serialize import (
    chunk_size,
    garbage_bchunk,
    pack_bnode,
    pack_bnode_torn,
    snapshot_from_bytes,
)
from repro.client import ClientStats
from repro.hw import Host
from repro.net import IB_100G, Network
from repro.rtree.serialize import CACHE_LINE
from repro.sim import Simulator
from repro.transport import connect


def small_tree(n=200, capacity=8, seed=1):
    rng = random.Random(seed)
    keys = rng.sample(range(10**6), n)
    tree = BPlusTree.bulk_load([(k, k * 2) for k in keys],
                               capacity=capacity)
    return tree, sorted(keys)


class TestCodec:
    def test_chunk_size_cache_aligned(self):
        for capacity in (4, 16, 64):
            assert chunk_size(capacity) % CACHE_LINE == 0

    def test_leaf_round_trip(self):
        tree, keys = small_tree(n=6, capacity=8)
        leaf = tree.root
        assert leaf.is_leaf
        view = snapshot_from_bytes(pack_bnode(leaf, 8), 8)
        assert view is not None
        assert view.is_leaf
        assert view.keys == tuple(leaf.keys)
        assert view.refs == tuple(leaf.values)
        assert view.next_leaf is None

    def test_inner_round_trip(self):
        tree, keys = small_tree(n=200, capacity=8)
        inner = tree.root
        assert not inner.is_leaf
        view = snapshot_from_bytes(pack_bnode(inner, 8), 8)
        assert view is not None
        assert not view.is_leaf
        assert view.keys == tuple(inner.keys)
        assert view.refs == tuple(c.chunk_id for c in inner.children)

    def test_leaf_chain_encoded(self):
        tree, keys = small_tree(n=60, capacity=8)
        leaf = tree.root
        while not leaf.is_leaf:
            leaf = leaf.children[0]
        view = snapshot_from_bytes(pack_bnode(leaf, 8), 8)
        assert view.next_leaf == leaf.next_leaf.chunk_id

    def test_torn_image_rejected(self):
        tree, keys = small_tree(n=6, capacity=8)
        assert snapshot_from_bytes(pack_bnode_torn(tree.root, 8), 8) is None

    def test_garbage_rejected(self):
        assert snapshot_from_bytes(garbage_bchunk(8), 8) is None

    def test_wrong_size_rejected(self):
        assert snapshot_from_bytes(b"\x00" * 7, 8) is None

    def test_overfull_rejected(self):
        tree, keys = small_tree(n=6, capacity=8)
        with pytest.raises(ValueError):
            pack_bnode(tree.root, 4)


class TestByteModeBTree:
    def _stack(self, n=1500, capacity=16):
        sim = Simulator()
        net = Network(sim, IB_100G)
        server_host = Host(sim, "server", IB_100G, cores=4)
        net.attach_server(server_host)
        rng = random.Random(2)
        keys = rng.sample(range(10**6), n)
        service = BTreeService(sim, server_host,
                               [(k, k + 1) for k in keys],
                               capacity=capacity, byte_mode=True)
        client_host = Host(sim, "client", IB_100G, cores=2)
        qp, _ = connect(sim, net, client_host, server_host)
        stats = ClientStats()
        engine = BTreeOffloadEngine(sim, qp, service.offload_descriptor(),
                                    service.costs, stats)
        return sim, server_host, service, engine, stats, sorted(keys)

    def test_gets_correct_over_bytes(self):
        sim, sh, service, engine, stats, keys = self._stack()
        sample = random.Random(3).sample(keys, 25)

        def client():
            out = []
            for k in sample:
                items = yield from engine.get(k)
                out.append(items)
            return out

        p = sim.process(client())
        sim.run()
        for k, items in zip(sample, p.value):
            assert items == [(k, k + 1)]
        assert service.byte_target.reads > 0

    def test_scan_correct_over_bytes(self):
        sim, sh, service, engine, stats, keys = self._stack()
        lo, hi = keys[100], keys[400]

        def client():
            items = yield from engine.scan(lo, hi)
            return items

        p = sim.process(client())
        sim.run()
        assert p.value == [(k, k + 1) for k in keys if lo <= k <= hi]

    def test_real_torn_validation_over_bytes(self):
        sim, sh, service, engine, stats, keys = self._stack()
        rng = random.Random(4)

        base = keys[10] * 7

        def writer():
            for i in range(400):
                yield from service.execute_put(base + i, i)
                yield sim.timeout(rng.uniform(0, 3e-6))

        def reader():
            # probe the very keys the writer is inserting, so the reads
            # land on the leaves whose write windows are opening
            for _ in range(250):
                yield from engine.get(base + rng.randrange(400))
                yield sim.timeout(rng.uniform(0, 4e-6))

        sim.process(writer())
        sim.process(reader())
        sim.run()
        assert stats.torn_retries > 0
        assert service.byte_target.torn_reads > 0

    def test_zero_server_cpu_over_bytes(self):
        sim, sh, service, engine, stats, keys = self._stack(n=400)

        def client():
            for k in keys[:20]:
                yield from engine.get(k)

        sim.process(client())
        sim.run()
        assert sh.cpu.total_work_seconds == 0.0
