"""Batched search: kernel selection, the engine, offload and wiring."""

import pytest

from repro.client import ClientStats, OffloadEngine
from repro.client.base import OP_INSERT, OP_SEARCH, Request
from repro.cluster.builder import run_experiment
from repro.cluster.config import ExperimentConfig
from repro.hw import Host
from repro.net import IB_100G, Network
from repro.rtree import (
    BatchSearchEngine,
    RStarTree,
    Rect,
    bulk_load,
    forced_kernel,
    kernel_name,
    set_kernel,
)
from repro.rtree import batch as batch_mod
from repro.server import RTreeServer
from repro.sim import Simulator
from repro.transport import connect
from repro.workloads import uniform_dataset
from repro.workloads.mixes import batch_runs


# -- kernel selection ---------------------------------------------------------


def test_kernel_selection_roundtrip():
    before = batch_mod.kernel_mode()
    try:
        assert set_kernel("python") == before
        assert kernel_name() == "python"
        assert batch_mod.kernel_mode() == "python"
        with forced_kernel("auto"):
            assert batch_mod.kernel_mode() == "auto"
            # auto engages the numpy batch kernels iff numpy exists.
            expected = "numpy" if batch_mod.HAVE_NUMPY else "python"
            assert kernel_name() == expected
        assert batch_mod.kernel_mode() == "python"
    finally:
        set_kernel(before)


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError):
        set_kernel("simd")


@pytest.mark.skipif(batch_mod.HAVE_NUMPY, reason="numpy is installed")
def test_numpy_kernel_without_numpy_raises():
    with pytest.raises(RuntimeError):
        set_kernel("numpy")


# -- the batch engine ---------------------------------------------------------


def _grid_tree(n_side=20):
    items = []
    for i in range(n_side):
        for j in range(n_side):
            x, y = i / n_side, j / n_side
            items.append((Rect(x, y, x + 0.5 / n_side, y + 0.5 / n_side),
                          i * n_side + j))
    return bulk_load(items, max_entries=8), items


def test_engine_counters_and_amortization():
    tree, _items = _grid_tree()
    queries = [Rect(0.1, 0.1, 0.4, 0.4)] * 16  # fully overlapping group
    engine = BatchSearchEngine(tree)
    results = engine.search_batch(queries)
    assert engine.batches_served == 1
    assert engine.queries_served == 16
    total_visits = sum(r.nodes_visited for r in results)
    # Identical windows collapse onto one shared frontier: the engine
    # pops each node once for the whole group.
    assert engine.shared_visits == results[0].nodes_visited
    assert total_visits == 16 * results[0].nodes_visited


def test_engine_empty_batch():
    tree, _items = _grid_tree(6)
    engine = BatchSearchEngine(tree)
    assert engine.search_batch([]) == []
    assert engine.batches_served == 1
    assert engine.queries_served == 0


def test_engine_tracks_tree_mutation():
    """Numpy mirrors and leaf payloads are keyed on mut_seq: results
    stay oracle-identical after inserts invalidate them."""
    tree = RStarTree(max_entries=8)
    for i in range(120):
        x, y = (i % 11) / 11, (i // 11) / 11
        tree.insert(Rect(x, y, x + 0.05, y + 0.05), i)
    queries = [Rect(0.2, 0.2, 0.6, 0.6), Rect(0.0, 0.0, 0.1, 0.1)]
    engine = BatchSearchEngine(tree)
    first = engine.search_batch(queries)  # builds the mirrors
    for q, got in zip(queries, first):
        assert got.matches == tree.search_via_rects(q).matches
    for i in range(120, 200):
        x, y = (i % 13) / 13, (i // 13) / 13
        tree.insert(Rect(x, y, x + 0.03, y + 0.03), i)
    second = engine.search_batch(queries)
    for q, got in zip(queries, second):
        oracle = tree.search_via_rects(q)
        assert got.matches == oracle.matches
        assert got.visited_chunks == oracle.visited_chunks


def test_count_batch_matches_search():
    tree, _items = _grid_tree(10)
    queries = [Rect(0, 0, 0.3, 0.3), Rect(0.5, 0.5, 1, 1), Rect(2, 2, 3, 3)]
    engine = BatchSearchEngine(tree)
    assert engine.count_batch(queries) == [
        tree.search(q).count for q in queries
    ]


def test_tree_search_batch_wrapper():
    tree, _items = _grid_tree(8)
    queries = [Rect(0.1, 0.1, 0.5, 0.5), Rect(0.6, 0.0, 0.9, 0.4)]
    for got, q in zip(tree.search_batch(queries), queries):
        assert got == tree.search(q)


# -- offloaded batched search -------------------------------------------------


def _make_offload(n_items=1500, multi_issue=True):
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=4)
    net.attach_server(server_host)
    items = uniform_dataset(n_items, seed=7)
    server = RTreeServer(sim, server_host, items, max_entries=16)
    client_host = Host(sim, "client", IB_100G, cores=2)
    client_qp, _server_qp = connect(sim, net, client_host, server_host)
    stats = ClientStats()
    engine = OffloadEngine(
        sim,
        client_qp,
        server.offload_descriptor(),
        server.costs,
        stats,
        multi_issue=multi_issue,
    )
    return sim, server, engine, stats


@pytest.mark.parametrize("multi_issue", [False, True])
def test_offload_search_batch_matches_server_search(multi_issue):
    sim, server, engine, stats = _make_offload(multi_issue=multi_issue)
    queries = [
        Rect(0.1, 0.1, 0.3, 0.3),
        Rect(0.25, 0.25, 0.5, 0.5),   # overlaps the first
        Rect(0.8, 0.8, 0.80001, 0.80001),
        Rect(0.1, 0.1, 0.3, 0.3),     # duplicate window
    ]

    def client():
        groups = yield from engine.search_batch(queries)
        return groups

    p = sim.process(client())
    sim.run()
    assert len(p.value) == len(queries)
    for query, got in zip(queries, p.value):
        expected = sorted(server.tree.search(query).data_ids)
        assert sorted(i for _r, i in got) == expected
    assert stats.offloaded_requests == len(queries)


def test_offload_batch_amortizes_chunk_fetches():
    """One shared traversal reads each frontier chunk once for the
    whole group, so a batch costs fewer fetches than per-query reads."""
    queries = [Rect(0.2, 0.2, 0.45, 0.45)] * 8

    def fetches(batched):
        sim, server, engine, _stats = _make_offload()

        def client():
            if batched:
                yield from engine.search_batch(queries)
            else:
                for q in queries:
                    yield from engine.search(q)

        sim.process(client())
        sim.run()
        return engine.chunks_fetched

    assert fetches(batched=True) < fetches(batched=False)


# -- workload grouping --------------------------------------------------------


def _req(i, op=OP_SEARCH):
    return Request(op=op, rect=Rect(0, 0, 1, 1), data_id=i)


def test_batch_runs_groups_searches_only():
    requests = [_req(0), _req(1), _req(2, OP_INSERT), _req(3), _req(4),
                _req(5), _req(6)]
    groups = list(batch_runs(requests, 3))
    assert [[r.data_id for r in g] for g in groups] == [
        [0, 1], [2], [3, 4, 5], [6]
    ]
    # batch_size < 2 means no batching at all.
    assert all(len(g) == 1 for g in batch_runs(requests, 1))


def test_config_rejects_negative_batch_queries():
    with pytest.raises(ValueError):
        ExperimentConfig(batch_queries=-1)


# -- end-to-end wiring --------------------------------------------------------


def _run(scheme, batch_queries, **kw):
    config = ExperimentConfig(
        scheme=scheme,
        n_clients=4,
        requests_per_client=32,
        workload_kind="search",
        dataset_size=4000,
        batch_queries=batch_queries,
        **kw,
    )
    return run_experiment(config)


def test_e2e_offload_batching_serves_all_and_speeds_up():
    sequential = _run("rdma-offloading-multi", 0)
    batched = _run("rdma-offloading-multi", 8)
    assert batched.total_requests == sequential.total_requests
    # The simulation is deterministic, so the RTT savings of the shared
    # traversal show up as a strictly better simulated wall clock.
    assert batched.throughput_kops > sequential.throughput_kops


def test_e2e_fm_scheme_degrades_gracefully_with_batching():
    """Schemes whose sessions route to fast messaging still complete
    with batching requested (groups fall back to per-request sends)."""
    result = _run("catfish", 4)
    assert result.total_requests == 4 * 32
    assert result.throughput_kops > 0
