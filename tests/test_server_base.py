"""Tests for the scheme-independent R-tree server and the cost model."""

import pytest

from repro.hw import Host
from repro.net import IB_100G, Network
from repro.rtree import Rect
from repro.rtree.rstar import MutationResult, SearchResult
from repro.server import CostModel, RTreeServer
from repro.server.base import TreeMeta
from repro.sim import Simulator
from repro.workloads import uniform_dataset


def make_server(n_items=2000, max_entries=16, cores=4):
    sim = Simulator()
    net = Network(sim, IB_100G)
    host = Host(sim, "server", IB_100G, cores=cores)
    net.attach_server(host)
    items = uniform_dataset(n_items, seed=3)
    server = RTreeServer(sim, host, items, max_entries=max_entries)
    return sim, net, host, server, items


class TestCostModel:
    def test_search_cost_composition(self):
        costs = CostModel()
        result = SearchResult(matches=[(Rect(0, 0, 1, 1), 1)] * 10,
                              nodes_visited=5)
        expected = (costs.request_parse + 5 * costs.node_visit
                    + 10 * costs.per_result)
        assert costs.search_cost(result) == pytest.approx(expected)

    def test_mutation_cost_composition(self):
        costs = CostModel()
        result = MutationResult(nodes_visited=3, splits=2,
                                reinserted_entries=4)
        expected = (costs.request_parse + 3 * costs.node_visit
                    + costs.insert_write + 2 * costs.split
                    + 4 * costs.reinsert_entry)
        assert costs.mutation_cost(result) == pytest.approx(expected)

    def test_response_cost(self):
        costs = CostModel()
        assert costs.response_cost(3) == pytest.approx(
            3 * costs.response_segment
        )


class TestServerSetup:
    def test_tree_is_loaded(self):
        sim, net, host, server, items = make_server(n_items=1000)
        assert server.tree.size == 1000
        server.tree.validate()

    def test_region_registered_once_and_covers_tree(self):
        sim, net, host, server, items = make_server()
        region = server.tree_region
        for chunk_id in server.tree.nodes:
            addr = server.chunk_address(chunk_id)
            assert region.contains(addr, server.chunk_bytes)

    def test_offload_descriptor_contents(self):
        sim, net, host, server, items = make_server()
        desc = server.offload_descriptor()
        assert desc.tree_rkey == server.tree_region.rkey
        assert desc.tree_base == server.tree_region.base
        assert desc.chunk_bytes == server.chunk_bytes
        assert desc.max_entries == server.max_entries

    def test_meta_target_reports_root(self):
        sim, net, host, server, items = make_server()
        target = host.memory.target_of(server.meta_region.rkey)
        meta = target.rdma_read(server.meta_region.base, 16, 0.0)
        assert isinstance(meta, TreeMeta)
        assert meta.root_chunk == server.tree.root.chunk_id
        assert meta.height == server.tree.height

    def test_tree_chunk_target_reads_nodes(self):
        sim, net, host, server, items = make_server()
        target = host.memory.target_of(server.tree_region.rkey)
        root_addr = server.chunk_address(server.tree.root.chunk_id)
        view = target.rdma_read(root_addr, server.chunk_bytes, 0.0)
        assert view.chunk_id == server.tree.root.chunk_id
        assert not view.torn

    def test_tree_region_rejects_remote_writes(self):
        sim, net, host, server, items = make_server()
        target = host.memory.target_of(server.tree_region.rkey)
        with pytest.raises(PermissionError):
            target.rdma_write(server.tree_region.base, 8, b"x", 0.0)

    def test_meta_region_rejects_remote_writes(self):
        sim, net, host, server, items = make_server()
        target = host.memory.target_of(server.meta_region.rkey)
        with pytest.raises(PermissionError):
            target.rdma_write(server.meta_region.base, 8, b"x", 0.0)


class TestExecution:
    def test_search_returns_matches_and_charges_cpu(self):
        sim, net, host, server, items = make_server(n_items=500)
        query = Rect(0, 0, 1, 1)

        def proc():
            matches = yield from server.execute_search(query)
            return matches

        p = sim.process(proc())
        sim.run()
        assert len(p.value) == 500
        assert host.cpu.total_work_seconds > 0
        assert server.searches_served == 1

    def test_search_results_match_direct_tree_search(self):
        sim, net, host, server, items = make_server(n_items=800)
        query = Rect(0.2, 0.2, 0.4, 0.4)

        def proc():
            matches = yield from server.execute_search(query)
            return matches

        p = sim.process(proc())
        sim.run()
        direct = server.tree.search(query)
        assert sorted(i for _r, i in p.value) == sorted(direct.data_ids)

    def test_insert_then_search_finds_it(self):
        sim, net, host, server, items = make_server(n_items=100)
        rect = Rect(0.5, 0.5, 0.50001, 0.50001)

        def proc():
            yield from server.execute_insert(rect, 999_999)
            matches = yield from server.execute_search(rect)
            return matches

        p = sim.process(proc())
        sim.run()
        assert 999_999 in [i for _r, i in p.value]
        assert server.inserts_served == 1

    def test_delete_removes(self):
        sim, net, host, server, items = make_server(n_items=100)
        rect, data_id = items[0]

        def proc():
            ok = yield from server.execute_delete(rect, data_id)
            matches = yield from server.execute_search(rect)
            return ok, matches

        p = sim.process(proc())
        sim.run()
        ok, matches = p.value
        assert ok
        assert data_id not in [i for _r, i in matches]
        assert server.deletes_served == 1

    def test_delete_missing_reports_false(self):
        sim, net, host, server, items = make_server(n_items=50)

        def proc():
            ok = yield from server.execute_delete(Rect(0, 0, 0.1, 0.1),
                                                  12345678)
            return ok

        p = sim.process(proc())
        sim.run()
        assert p.value is False

    def test_insert_opens_write_window(self):
        """During an insert's CPU charge, the touched nodes read as torn."""
        sim, net, host, server, items = make_server(n_items=500)
        rect = Rect(0.3, 0.3, 0.3001, 0.3001)
        observations = []

        def writer():
            yield from server.execute_insert(rect, 77777)

        def prober():
            # The window opens during the trailing store burst; sample
            # frequently across the whole insert to catch it.
            for _ in range(400):
                yield sim.timeout(0.1e-6)
                if any(node.active_writers > 0
                       for node in server.tree.nodes.values()):
                    observations.append(True)
                    return

        sim.process(writer())
        sim.process(prober())
        sim.run()
        assert observations == [True]
        assert server.write_tracker.total_writes == 1

    def test_service_inflation_multiplies_cost(self):
        sim, net, host, server, items = make_server(n_items=500)
        query = Rect(0, 0, 0.01, 0.01)

        def proc():
            yield from server.execute_search(query)

        sim.process(proc())
        sim.run()
        base_work = host.cpu.total_work_seconds

        sim2, net2, host2, server2, _ = make_server(n_items=500)
        server2.service_inflation = 2.0

        def proc2():
            yield from server2.execute_search(query)

        sim2.process(proc2())
        sim2.run()
        assert host2.cpu.total_work_seconds == pytest.approx(2 * base_work)

    def test_concurrent_searches_share_cores(self):
        sim, net, host, server, items = make_server(n_items=2000, cores=2)

        def proc():
            yield from server.execute_search(Rect(0, 0, 1, 1))

        for _ in range(4):
            sim.process(proc())
        sim.run()
        assert server.searches_served == 4
        # With 2 cores and 4 equal jobs, elapsed ~ 2x single-job time.
        assert host.cpu.utilization() > 0.9
