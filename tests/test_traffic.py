"""repro.traffic: arrival determinism, admission control, conservation,
open-loop tail metrics, and the flash-crowd chaos fingerprint.

The determinism tests pin the layer's core contract: arrival schedules
are a pure function of (seed, stream names, rate shape) — independent of
tenant mix, shard count, and everything downstream of the generator.
"""

import pytest

from repro.cluster.builder import run_experiment
from repro.cluster.config import ExperimentConfig
from repro.faults import run_scenario
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.traffic import (
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    TokenBucket,
    TrafficConfig,
    aggregate_generator,
)
from repro.traffic.harness import TrafficRunner, rate_sweep, run_traffic
from repro.traffic.mux import (
    ConnectionMux,
    OK,
    SHED_ADMISSION,
    SHED_WATERMARK,
    TrafficJob,
)

ALL_KINDS = ("poisson", "diurnal", "flash-crowd")

#: The flash-crowd chaos scenario's outcome digest at seed 0.  The
#: scenario pins its own deployment (see the tweaks in
#: repro.faults.scenarios), so this replays bit-identically regardless
#: of ChaosConfig sizing overrides.
FLASH_CROWD_FINGERPRINT = "95d90656ca53e494"


def _traffic(**kw) -> TrafficConfig:
    base = dict(
        kind="poisson",
        rate=100_000.0,
        duration_s=1e-3,
        n_aggregates=2,
        users_per_aggregate=64,
        sessions=2,
        queue_watermark=64,
        window=64,
    )
    base.update(kw)
    return TrafficConfig(**base)


def _config(**traffic_kw) -> ExperimentConfig:
    return ExperimentConfig(
        scheme="fast-messaging-event",
        fabric="ib-100g",
        dataset_size=500,
        seed=3,
        traffic=_traffic(**traffic_kw),
    )


class TestArrivalDeterminism:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_same_seed_identical_schedule(self, kind):
        traffic = _traffic(
            kind=kind,
            tenants=(("gold", 3.0), ("free", 1.0)),
            spike_start=0.2e-3,
            spike_end=0.6e-3,
        )
        schedules = []
        for _ in range(2):
            rngs = RngRegistry(11).fork("aggregate-0")
            gen = aggregate_generator(traffic, rngs)
            schedules.append(gen.schedule(traffic.duration_s))
        assert schedules[0], "empty schedule proves nothing"
        # Timestamps AND tenant interleavings replay exactly.
        assert schedules[0] == schedules[1]

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_different_seed_different_schedule(self, kind):
        traffic = _traffic(kind=kind)
        a = aggregate_generator(
            traffic, RngRegistry(1).fork("aggregate-0"))
        b = aggregate_generator(
            traffic, RngRegistry(2).fork("aggregate-0"))
        assert (a.schedule(traffic.duration_s)
                != b.schedule(traffic.duration_s))

    def test_tenant_mix_never_perturbs_timestamps(self):
        lone = _traffic()
        mixed = _traffic(tenants=(("gold", 3.0), ("free", 1.0)))
        times = []
        for traffic in (lone, mixed):
            gen = aggregate_generator(
                traffic, RngRegistry(5).fork("aggregate-0"))
            times.append([t for t, _ten in gen.schedule(1e-3)])
        assert times[0] == times[1]

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_shard_count_never_perturbs_arrivals(self, kind):
        """The harness's streams are named off the root seed only, so a
        1-shard and a 4-shard deployment offer bit-identical load."""
        schedules = []
        for n_shards in (None, 4):
            config = _config(kind=kind, spike_start=0.2e-3,
                             spike_end=0.6e-3)
            config.n_shards = n_shards
            runner = TrafficRunner(config)
            schedules.append([
                agg.generator.schedule(config.traffic.duration_s)
                for agg in runner.aggregates
            ])
        assert schedules[0] == schedules[1]

    def test_rate_shapes(self):
        flat = ConstantRate(1000.0)
        assert flat.rate(0.0) == flat.rate(1.0) == flat.peak == 1000.0
        diurnal = DiurnalRate(1000.0, period_s=1.0, amplitude=0.5)
        assert diurnal.rate(0.25) == pytest.approx(1500.0)  # crest
        assert diurnal.rate(0.75) == pytest.approx(500.0)   # trough
        assert diurnal.peak == pytest.approx(1500.0)
        crowd = FlashCrowdRate(1000.0, 0.2, 0.4, multiplier=8.0)
        assert crowd.rate(0.1) == 1000.0
        assert crowd.rate(0.3) == 8000.0
        assert not crowd.in_spike(0.4)  # half-open window
        assert crowd.peak == 8000.0


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [
        dict(kind="tsunami"),
        dict(rate=0.0),
        dict(duration_s=-1.0),
        dict(n_aggregates=0),
        dict(users_per_aggregate=0),
        dict(tenants=()),
        dict(tenants=(("gold", -1.0),)),
        dict(window=0),
        dict(sessions=0),
        dict(queue_watermark=0),
        dict(admit_rate=0.0),
        dict(kind="diurnal", amplitude=1.5),
        dict(kind="diurnal", period_s=0.0),
        dict(kind="flash-crowd", spike_start=2e-3, spike_end=1e-3),
        dict(kind="flash-crowd", spike_multiplier=0.5),
    ])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            _traffic(**bad)

    def test_total_users(self):
        assert _traffic(n_aggregates=3,
                        users_per_aggregate=10).total_users == 30

    def test_traffic_layer_rejects_tcp(self):
        config = _config()
        config.scheme = "tcp"
        with pytest.raises(ValueError):
            TrafficRunner(config)


class _StuckSession:
    """Never completes: every accepted job parks forever."""

    def __init__(self, sim):
        self.sim = sim

    def execute(self, request):
        yield self.sim.timeout(10.0)


def _job(i=0):
    return TrafficJob(aggregate_id=0, seq=i, user_id=i, tenant="default",
                      request=None, t_arrival=0.0)


class TestAdmission:
    def test_token_bucket_burst_and_refill(self):
        bucket = TokenBucket(rate=1000.0, burst=2)
        assert bucket.try_take(0.0) and bucket.try_take(0.0)
        assert not bucket.try_take(0.0)          # burst exhausted
        assert bucket.try_take(1e-3)             # 1 token accrued
        assert not bucket.try_take(1e-3)
        assert bucket.try_take(10.0)             # refill caps at burst
        assert bucket.try_take(10.0)
        assert not bucket.try_take(10.0)

    def test_watermark_sheds_excess(self):
        sim = Simulator()
        mux = ConnectionMux(sim, [_StuckSession(sim)], watermark=2)
        outcomes = [mux.offer(_job(i)) for i in range(5)]
        # One job is consumed by the (stuck) dispatcher at t=0; the
        # watermark then bounds the queue at 2 waiting jobs.
        sim.run(until=1e-6)
        outcomes += [mux.offer(_job(5 + i)) for i in range(3)]
        assert mux.shed_watermark > 0
        assert mux.offered == 8
        assert mux.admitted + mux.shed_watermark == 8
        assert outcomes.count(False) == mux.shed_watermark

    def test_token_bucket_sheds_are_labelled(self):
        sim = Simulator()
        mux = ConnectionMux(sim, [_StuckSession(sim)], watermark=100,
                            bucket=TokenBucket(rate=1000.0, burst=1))
        jobs = [_job(i) for i in range(3)]
        accepted = [mux.offer(j) for j in jobs]
        assert accepted == [True, False, False]
        assert [j.status for j in jobs[1:]] == [SHED_ADMISSION] * 2
        assert mux.shed_admission == 2
        assert len(mux.shed_times) == 2

    def test_window_sheds_count_and_never_block(self):
        result = run_traffic(_config(rate=400_000.0, window=1,
                                     sessions=1, queue_watermark=1))
        assert result.shed_window > 0
        # Open loop: arrivals are untouched by the tiny window.
        assert result.arrivals > result.completed


class TestHarness:
    def test_conservation_and_tails(self):
        result = run_traffic(_config(rate=150_000.0))
        assert (result.completed + result.failed
                + result.shed_client_total) == result.arrivals
        assert result.completed > 0
        assert (result.sojourn_p50_us <= result.sojourn_p95_us
                <= result.sojourn_p99_us <= result.sojourn_p999_us)
        # Sub-saturation: achieved tracks offered within tolerance.
        assert result.achieved_rps == pytest.approx(
            result.offered_rps, rel=0.25)

    def test_snapshot_has_open_loop_tag_and_p999(self):
        result = run_traffic(_config(
            tenants=(("gold", 3.0), ("free", 1.0))))
        sojourn = result.metrics["metrics"]["traffic.sojourn_us"]
        assert sojourn["loop"] == "open"
        assert sojourn["p50"] <= sojourn["p999"] <= sojourn["max"]
        assert result.metrics["meta"]["loop"] == "open"
        for tenant in ("gold", "free"):
            view = result.metrics["metrics"][f"traffic.sojourn_us.{tenant}"]
            assert view["loop"] == "open"
        assert set(result.per_tenant) == {"gold", "free"}

    def test_closed_loop_results_are_tagged(self):
        """Satellite: the classic drivers now carry the loop caveat."""
        result = run_experiment(ExperimentConfig(
            scheme="catfish", n_clients=2, requests_per_client=40,
            dataset_size=500, seed=3))
        lat = result.metrics["metrics"]["client.latency_us"]
        assert lat["loop"] == "closed"
        assert lat["p99"] <= lat["p999"] <= lat["max"]
        assert result.p999_latency_us >= result.p99_latency_us

    def test_run_experiment_dispatches_on_traffic(self):
        run = run_experiment(_config())
        assert run.total_requests > 0
        assert run.metrics["meta"]["loop"] == "open"
        assert run.extra["shed_client"] >= 0.0
        assert run.p999_latency_us >= run.p99_latency_us

    def test_rate_sweep_one_deployment_per_rate(self):
        results = rate_sweep(_config(), [50_000.0, 100_000.0])
        assert [r.offered_rps for r in results] == [50_000.0, 100_000.0]
        for result in results:
            assert (result.completed + result.failed
                    + result.shed_client_total) == result.arrivals

    def test_sharded_run_conserves(self):
        config = _config()
        config.n_shards = 4
        result = run_traffic(config)
        assert result.n_shards == 4
        assert (result.completed + result.failed
                + result.shed_client_total) == result.arrivals
        assert result.completed > 0

    def test_user_identity_survives_the_mux(self):
        config = _config()
        runner = TrafficRunner(config, record=True)
        result = runner.run()
        assert result.users_touched > 0
        assert result.users_touched <= result.users_total
        users = config.traffic.users_per_aggregate
        for job in runner.mux.finished_jobs:
            assert 0 <= job.user_id < users
            assert job.status in (OK, "failed")
        finished = {(j.aggregate_id, j.seq)
                    for j in runner.mux.finished_jobs}
        assert len(finished) == len(runner.mux.finished_jobs)


class TestFlashCrowdScenario:
    def test_green_and_fingerprint_pinned(self):
        report = run_scenario("flash-crowd", seed=0)
        assert report.ok, report.failures
        assert report.fingerprint() == FLASH_CROWD_FINGERPRINT
        names = [n for n, _ok, _d in report.invariants]
        assert "fault-fired:client-shed" in names
        assert "fault-fired:server-shed" in names
        assert "shedding-stopped" in names
        assert "throughput-recovered" in names
