"""Units for the fault plan / injector layer (repro.faults)."""

import random

import pytest

from repro.client import ClientStats
from repro.client.fm_client import FmSession
from repro.faults import (
    ClientStall,
    FaultInjector,
    FaultPlan,
    FaultWindow,
    HeartbeatBlackout,
    LinkFault,
    NicReadStall,
    WorkerCrash,
    WriteStorm,
)
from repro.faults.plan import EMPTY_PLAN, RX, TX
from repro.hw import Host
from repro.net import IB_100G, Network
from repro.rtree import Rect
from repro.server import EVENT, FastMessagingServer, RTreeServer
from repro.sim import Simulator
from repro.workloads import uniform_dataset


class TestPlan:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            FaultWindow(1.0, 1.0)       # empty
        with pytest.raises(ValueError):
            FaultWindow(2.0, 1.0)       # inverted
        with pytest.raises(ValueError):
            FaultWindow(-0.1, 1.0)      # negative start

    def test_window_active_is_half_open(self):
        w = FaultWindow(1.0, 2.0)
        assert not w.active(0.999)
        assert w.active(1.0)
        assert w.active(1.999)
        assert not w.active(2.0)
        assert w.duration == 1.0

    def test_link_fault_validation(self):
        with pytest.raises(ValueError):
            LinkFault(0.0, 1.0, direction="sideways")
        with pytest.raises(ValueError):
            LinkFault(0.0, 1.0, loss_prob=1.0)  # certain loss never ends
        with pytest.raises(ValueError):
            LinkFault(0.0, 1.0, extra_latency_s=-1e-6)

    def test_other_fault_validation(self):
        with pytest.raises(ValueError):
            NicReadStall(0.0, 1.0, stall_s=0.0)
        with pytest.raises(ValueError):
            WriteStorm(0.0, 1.0, hold_s=0.0)
        with pytest.raises(ValueError):
            ClientStall(0.0, 1.0, stall_s=0.0)

    def test_plan_rejects_non_faults(self):
        with pytest.raises(TypeError):
            FaultPlan((42,))

    def test_plan_introspection(self):
        crash = WorkerCrash(0.5, 1.5)
        loss = LinkFault(0.0, 1.0, loss_prob=0.1)
        plan = FaultPlan((crash, loss))
        assert bool(plan) and len(plan) == 2
        assert plan.of_type(WorkerCrash) == [crash]
        assert plan.of_type(HeartbeatBlackout) == []
        assert plan.horizon == 1.5
        lines = plan.describe()
        assert len(lines) == 2
        assert "LinkFault" in lines[0]      # sorted by start time
        assert "WorkerCrash" in lines[1]

    def test_empty_plan(self):
        assert not EMPTY_PLAN
        assert EMPTY_PLAN.horizon == 0.0


class TestPassiveHooks:
    def test_link_penalty_is_seeded_and_quantized(self):
        plan = FaultPlan((
            LinkFault(0.0, 1.0, loss_prob=0.5, retransmit_delay_s=10e-6),
        ))

        def penalties(seed):
            inj = FaultInjector(Simulator(), plan,
                                rng=random.Random(seed))
            return [inj.link_penalty("tx") for _ in range(200)]

        first = penalties(42)
        assert any(p > 0 for p in first)
        # Every penalty is a whole number of retransmit delays.
        for p in first:
            assert abs(p / 10e-6 - round(p / 10e-6)) < 1e-9
        assert first == penalties(42)
        assert first != penalties(43)

    def test_link_penalty_outside_window_is_free(self):
        plan = FaultPlan((LinkFault(0.5, 1.0, extra_latency_s=5e-6),))
        sim = Simulator()
        inj = FaultInjector(sim, plan)
        assert inj.link_penalty("tx") == 0.0
        sim.now = 0.7
        assert inj.link_penalty("tx") == 5e-6
        sim.now = 1.0
        assert inj.link_penalty("tx") == 0.0

    def test_link_penalty_respects_direction(self):
        plan = FaultPlan((LinkFault(0.0, 1.0, direction=TX,
                                    extra_latency_s=5e-6),))
        inj = FaultInjector(Simulator(), plan)
        assert inj.link_penalty(TX) == 5e-6
        assert inj.link_penalty(RX) == 0.0

    def test_nic_stall_filters_by_host(self):
        plan = FaultPlan((NicReadStall(0.0, 1.0, host="server",
                                       stall_s=3e-6),))
        inj = FaultInjector(Simulator(), plan)
        assert inj.nic_read_stall("server") == 3e-6
        assert inj.nic_read_stall("client-0") == 0.0
        assert int(inj.nic_stalls_injected) == 1

    def test_heartbeat_suppression_window(self):
        plan = FaultPlan((HeartbeatBlackout(0.2, 0.4),))
        sim = Simulator()
        inj = FaultInjector(sim, plan)
        assert not inj.heartbeat_suppressed()
        sim.now = 0.3
        assert inj.heartbeat_suppressed()
        assert int(inj.beats_blacked_out) == 1
        sim.now = 0.4
        assert not inj.heartbeat_suppressed()

    def test_client_stall_filters_by_id(self):
        plan = FaultPlan((ClientStall(0.0, 1.0, client_ids=(2,),
                                      stall_s=1e-3),))
        inj = FaultInjector(Simulator(), plan)
        assert inj.client_stall(2) == 1e-3
        assert inj.client_stall(0) == 0.0

    def test_empty_plan_hooks_are_free(self):
        inj = FaultInjector(Simulator(), EMPTY_PLAN)
        assert inj.link_penalty("tx") == 0.0
        assert inj.nic_read_stall("server") == 0.0
        assert not inj.heartbeat_suppressed()
        assert inj.client_stall(0) == 0.0


class TestActiveDrivers:
    def test_start_twice_rejected(self):
        inj = FaultInjector(Simulator(), EMPTY_PLAN)
        inj.start()
        with pytest.raises(RuntimeError):
            inj.start()

    def test_worker_crash_requires_server(self):
        plan = FaultPlan((WorkerCrash(0.0, 1.0),))
        with pytest.raises(ValueError):
            FaultInjector(Simulator(), plan).start()

    def test_write_storm_requires_targets(self):
        plan = FaultPlan((WriteStorm(0.0, 1.0),))
        with pytest.raises(ValueError):
            FaultInjector(Simulator(), plan).start()


def _fm_stack(n_items=500):
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=2)
    net.attach_server(server_host)
    server = RTreeServer(sim, server_host, uniform_dataset(n_items, seed=3),
                         max_entries=16)
    fm_server = FastMessagingServer(sim, server, net, mode=EVENT)
    client_host = Host(sim, "client", IB_100G, cores=2)
    conn = fm_server.open_connection(client_host)
    stats = ClientStats()
    fm = FmSession(sim, conn, 0, stats)
    return sim, server, fm_server, conn, fm, stats


class TestWorkerCrashRestart:
    def test_crash_is_idempotent_and_restart_drains(self):
        sim, server, fm_server, conn, fm, stats = _fm_stack()
        fm_server.crash_worker(conn)
        fm_server.crash_worker(conn)  # no double-crash accounting
        assert int(fm_server.workers_crashed) == 1
        assert conn.worker_down

        results = []

        def client():
            matches = yield from fm.search(Rect(0, 0, 1, 1))
            results.append(matches)

        proc = sim.process(client())
        sim.run(until=1e-3)
        assert not results  # the worker is down; the request queues

        fm_server.restart_worker(conn)
        fm_server.restart_worker(conn)  # no-op when already up
        assert int(fm_server.workers_restarted) == 1
        sim.run_until_triggered(proc, limit=1.0)
        assert len(results) == 1
        assert len(results[0]) == 500  # whole-space search

    def test_crash_window_via_injector(self):
        sim, server, fm_server, conn, fm, stats = _fm_stack()
        plan = FaultPlan((WorkerCrash(0.1e-3, 0.4e-3),))
        inj = FaultInjector(sim, plan)
        inj.start(fm_server=fm_server)

        done = []

        def client():
            for _ in range(20):
                yield from fm.search(Rect(0.4, 0.4, 0.6, 0.6))
                done.append(sim.now)

        proc = sim.process(client())
        sim.run_until_triggered(proc, limit=1.0)
        assert len(done) == 20
        assert int(fm_server.workers_crashed) == 1
        assert int(fm_server.workers_restarted) == 1
        # Crash delivery is at a request boundary: at most the one
        # request in flight at crash time may complete inside the
        # window; everything else waits for the restart.
        inside = [t for t in done if 0.1e-3 <= t < 0.4e-3]
        assert len(inside) <= 1
        # The outage is visible as a gap spanning the rest of the window.
        last_before = max(t for t in done if t < 0.4e-3)
        first_after = min(t for t in done if t >= 0.4e-3)
        assert first_after - last_before > 0.2e-3
