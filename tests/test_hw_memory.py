"""Unit tests for registered memory regions and the chunk allocator."""

import pytest

from repro.hw import ChunkAllocator, MemoryRegistry, MemoryError_


class TestMemoryRegistry:
    def test_register_assigns_unique_rkeys(self):
        reg = MemoryRegistry()
        a = reg.register(1024, name="a")
        b = reg.register(1024, name="b")
        assert a.rkey != b.rkey

    def test_regions_are_disjoint(self):
        reg = MemoryRegistry()
        a = reg.register(4096)
        b = reg.register(4096)
        assert a.end <= b.base or b.end <= a.base

    def test_lookup_and_deregister(self):
        reg = MemoryRegistry()
        r = reg.register(100)
        assert reg.lookup(r.rkey) is r
        reg.deregister(r.rkey)
        with pytest.raises(MemoryError_):
            reg.lookup(r.rkey)

    def test_deregister_unknown_rkey(self):
        reg = MemoryRegistry()
        with pytest.raises(MemoryError_):
            reg.deregister(99)

    def test_validate_in_bounds(self):
        reg = MemoryRegistry()
        r = reg.register(1000)
        assert reg.validate(r.rkey, r.base, 1000) is r
        assert reg.validate(r.rkey, r.base + 500, 500) is r

    def test_validate_out_of_bounds(self):
        reg = MemoryRegistry()
        r = reg.register(1000)
        with pytest.raises(MemoryError_):
            reg.validate(r.rkey, r.base + 500, 501)
        with pytest.raises(MemoryError_):
            reg.validate(r.rkey, r.base - 1, 10)

    def test_bind_and_target_of(self):
        reg = MemoryRegistry()
        r = reg.register(100)
        target = object()
        reg.bind(r.rkey, target)
        assert reg.target_of(r.rkey) is target
        assert reg.target_of(12345) is None

    def test_bind_unknown_rkey_fails(self):
        reg = MemoryRegistry()
        with pytest.raises(MemoryError_):
            reg.bind(42, object())

    def test_deregister_clears_target(self):
        reg = MemoryRegistry()
        r = reg.register(100)
        reg.bind(r.rkey, object())
        reg.deregister(r.rkey)
        assert reg.target_of(r.rkey) is None

    def test_zero_size_region_rejected(self):
        reg = MemoryRegistry()
        with pytest.raises(ValueError):
            reg.register(0)


class TestChunkAllocator:
    def _allocator(self, chunks=10, chunk_size=64):
        reg = MemoryRegistry()
        region = reg.register(chunks * chunk_size, name="tree")
        return ChunkAllocator(region, chunk_size)

    def test_capacity(self):
        alloc = self._allocator(chunks=10, chunk_size=64)
        assert alloc.capacity == 10

    def test_alloc_unique_ids(self):
        alloc = self._allocator()
        ids = {alloc.alloc() for _ in range(10)}
        assert len(ids) == 10

    def test_exhaustion(self):
        alloc = self._allocator(chunks=2)
        alloc.alloc()
        alloc.alloc()
        with pytest.raises(MemoryError_):
            alloc.alloc()

    def test_free_and_reuse(self):
        alloc = self._allocator(chunks=1)
        cid = alloc.alloc()
        alloc.free(cid)
        assert alloc.alloc() == cid

    def test_double_free_rejected(self):
        alloc = self._allocator()
        cid = alloc.alloc()
        alloc.free(cid)
        with pytest.raises(MemoryError_):
            alloc.free(cid)

    def test_free_unallocated_rejected(self):
        alloc = self._allocator()
        with pytest.raises(MemoryError_):
            alloc.free(3)

    def test_address_round_trip(self):
        alloc = self._allocator(chunks=10, chunk_size=128)
        for cid in range(10):
            addr = alloc.address_of(cid)
            assert alloc.chunk_of(addr) == cid

    def test_addresses_inside_region(self):
        alloc = self._allocator(chunks=10, chunk_size=128)
        for cid in range(10):
            addr = alloc.address_of(cid)
            assert alloc.region.contains(addr, 128)

    def test_address_of_out_of_range(self):
        alloc = self._allocator(chunks=10)
        with pytest.raises(MemoryError_):
            alloc.address_of(10)
        with pytest.raises(MemoryError_):
            alloc.address_of(-1)

    def test_chunk_of_unaligned(self):
        alloc = self._allocator(chunk_size=64)
        with pytest.raises(MemoryError_):
            alloc.chunk_of(alloc.region.base + 3)

    def test_allocated_count(self):
        alloc = self._allocator()
        a = alloc.alloc()
        alloc.alloc()
        assert alloc.allocated_count == 2
        alloc.free(a)
        assert alloc.allocated_count == 1

    def test_chunk_size_validation(self):
        reg = MemoryRegistry()
        region = reg.register(100)
        with pytest.raises(ValueError):
            ChunkAllocator(region, 0)
        with pytest.raises(ValueError):
            ChunkAllocator(region, 200)
