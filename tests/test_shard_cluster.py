"""End-to-end tests of the sharded cluster: oracle equivalence,
deterministic replay, per-shard RNG streams, and the shard-loss
scenario wiring."""

import pytest

from repro.cluster.builder import run_experiment
from repro.cluster.config import ExperimentConfig
from repro.faults import SCENARIOS, run_scenario
from repro.shard.deploy import ShardedExperimentRunner
from repro.shard.verify import verify_routed_results
from repro.sim.rng import RngRegistry


def small_config(**overrides):
    base = dict(
        scheme="catfish-sharded",
        fabric="ib-100g",
        n_clients=3,
        requests_per_client=40,
        workload_kind="mixed",
        scale="0.02",
        dataset_size=1500,
        server_cores=2,
        seed=11,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestOracleEquivalence:
    def test_merged_results_match_single_server_oracle(self):
        runner = ShardedExperimentRunner(small_config(),
                                         record_results=True)
        result = runner.run()
        assert result.extra["n_shards"] == 4
        summary = verify_routed_results(runner)
        assert summary.checked == 120
        assert summary.ok, vars(summary)
        assert summary.degraded_results == 0

    def test_oracle_holds_across_shard_counts(self):
        for n_shards in (1, 2, 5):
            runner = ShardedExperimentRunner(
                small_config(n_shards=n_shards), record_results=True,
            )
            runner.run()
            summary = verify_routed_results(runner)
            assert summary.ok, (n_shards, vars(summary))

    def test_search_workload_also_verifies(self):
        runner = ShardedExperimentRunner(
            small_config(workload_kind="search"), record_results=True,
        )
        runner.run()
        summary = verify_routed_results(runner)
        assert summary.ok
        assert summary.skipped_writes == 0


class TestDispatchAndConfig:
    def test_run_experiment_dispatches_on_scheme_shards(self):
        result = run_experiment(small_config())
        assert result.extra["n_shards"] == 4

    def test_n_shards_overrides_scheme_default(self):
        runner = ShardedExperimentRunner(small_config(n_shards=2))
        assert runner.n_shards == 2

    def test_single_server_scheme_stays_unsharded(self):
        result = run_experiment(small_config(scheme="catfish"))
        assert "n_shards" not in result.extra

    def test_rejects_tcp_scheme(self):
        with pytest.raises(ValueError):
            ShardedExperimentRunner(small_config(scheme="tcp"))

    def test_rejects_non_rdma_fabric(self):
        with pytest.raises(ValueError):
            ShardedExperimentRunner(small_config(fabric="eth-1g"))

    def test_config_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            small_config(n_shards=0)


class TestDeterminism:
    def test_same_seed_same_run(self):
        a = ShardedExperimentRunner(small_config(), record_results=True)
        ra = a.run()
        b = ShardedExperimentRunner(small_config(), record_results=True)
        rb = b.run()
        assert ra.elapsed_s == rb.elapsed_s
        assert ra.throughput_kops == rb.throughput_kops
        log_a = [(i, req.op, t) for router in a.routers
                 for i, req, _res, t in router.log]
        log_b = [(i, req.op, t) for router in b.routers
                 for i, req, _res, t in router.log]
        assert log_a == log_b

    def test_different_seed_different_run(self):
        ra = ShardedExperimentRunner(small_config(seed=1)).run()
        rb = ShardedExperimentRunner(small_config(seed=2)).run()
        assert ra.elapsed_s != rb.elapsed_s


class TestPerShardRng:
    def test_stream_depends_on_seed_and_shard_only(self):
        draws = [RngRegistry(5).shard(2).stream("scheduler").random()
                 for _ in range(3)]
        assert draws[0] == draws[1] == draws[2]

    def test_independent_of_shard_count(self):
        """Growing the cluster must not perturb existing shards' streams."""
        small = RngRegistry(7)
        wide = RngRegistry(7)
        for shard_id in range(8):  # touch 8 shards on the wide registry
            wide.shard(shard_id)
        for shard_id in range(4):
            a = small.shard(shard_id).stream("scheduler")
            b = wide.shard(shard_id).stream("scheduler")
            assert [a.random() for _ in range(5)] == \
                   [b.random() for _ in range(5)]

    def test_distinct_shards_distinct_streams(self):
        reg = RngRegistry(3)
        a = reg.shard(0).stream("scheduler").random()
        b = reg.shard(1).stream("scheduler").random()
        assert a != b

    def test_rejects_negative_shard_id(self):
        with pytest.raises(ValueError):
            RngRegistry(0).shard(-1)


class TestShardLossScenario:
    def test_registered_with_dedicated_runner(self):
        assert "shard-loss" in SCENARIOS
        assert SCENARIOS["shard-loss"].runner is not None
        assert "shard" in SCENARIOS["shard-loss"].summary

    @pytest.mark.chaos
    def test_default_size_run_is_green(self):
        report = run_scenario("shard-loss")
        assert report.ok, report.failures
        assert report.counters["shards-lost"] >= 1
        assert report.counters["partial-results"] >= 1

    @pytest.mark.chaos
    def test_fingerprint_replays(self):
        a = run_scenario("shard-loss", seed=0)
        b = run_scenario("shard-loss", seed=0)
        assert a.fingerprint() == b.fingerprint()
