"""Unit tests for the TCP/IP transport model."""

import pytest

from repro.hw import Host
from repro.net import ETH_1G, Network
from repro.sim import Simulator
from repro.transport import TcpConnection, request_response


def make_pair(profile=ETH_1G, server_cores=28, client_cores=2):
    sim = Simulator()
    net = Network(sim, profile)
    server = Host(sim, "server", profile, cores=server_cores)
    client = Host(sim, "client", profile, cores=client_cores)
    net.attach_server(server)
    conn = TcpConnection(sim, net, client, server)
    return sim, net, server, client, conn


def test_message_arrives_with_payload():
    sim, net, server, client, conn = make_pair()
    got = []

    def client_proc():
        yield from conn.client_send({"op": "ping"}, 64)

    def server_proc():
        msg = yield conn.server_recv()
        got.append(msg.payload)

    sim.process(client_proc())
    sim.process(server_proc())
    sim.run()
    assert got == [{"op": "ping"}]


def test_send_charges_both_cpus():
    sim, net, server, client, conn = make_pair()

    def client_proc():
        yield from conn.client_send("x", 100)

    def server_proc():
        yield conn.server_recv()

    sim.process(client_proc())
    sim.process(server_proc())
    sim.run()
    assert client.cpu.total_work_seconds > 0
    assert server.cpu.total_work_seconds > 0
    # kernel costs are symmetric for the same size
    assert client.cpu.total_work_seconds == pytest.approx(
        server.cpu.total_work_seconds
    )


def test_one_way_latency_exceeds_base_latency():
    sim, net, server, client, conn = make_pair()
    arrival = []

    def client_proc():
        yield from conn.client_send("x", 1)

    def server_proc():
        yield conn.server_recv()
        arrival.append(sim.now)

    sim.process(client_proc())
    sim.process(server_proc())
    sim.run()
    # must include propagation + two kernel crossings
    assert arrival[0] > ETH_1G.base_latency_s + ETH_1G.tcp_kernel_per_msg_s


def test_request_response_round_trip():
    sim, net, server, client, conn = make_pair()

    def server_proc():
        msg = yield conn.server_recv()
        yield from conn.server_send(msg.payload.upper(), 128)

    def client_proc():
        replies = yield from request_response(sim, conn, "hello", 64)
        return replies

    sim.process(server_proc())
    p = sim.process(client_proc())
    sim.run()
    assert p.value == ["HELLO"]


def test_multiple_responses_collected():
    sim, net, server, client, conn = make_pair()

    def server_proc():
        yield conn.server_recv()
        for part in ["a", "b", "c"]:
            yield from conn.server_send(part, 32)

    def client_proc():
        replies = yield from request_response(
            sim, conn, "req", 16, expect_responses=3
        )
        return replies

    sim.process(server_proc())
    p = sim.process(client_proc())
    sim.run()
    assert p.value == ["a", "b", "c"]


def test_send_on_closed_connection_raises():
    sim, net, server, client, conn = make_pair()
    conn.close()

    def client_proc():
        yield from conn.client_send("x", 1)

    sim.process(client_proc())
    with pytest.raises(ConnectionError):
        sim.run()


def test_shared_server_link_serializes_large_transfers():
    """Two clients pushing big messages must queue on the server rx link."""
    profile = ETH_1G
    sim = Simulator()
    net = Network(sim, profile)
    server = Host(sim, "server", profile)
    net.attach_server(server)
    clients = [Host(sim, f"c{i}", profile, cores=2) for i in range(2)]
    conns = [TcpConnection(sim, net, c, server) for c in clients]
    arrivals = []

    size = 1_000_000  # 1 MB each; ~8 ms serialization on 1 GbE

    def client_proc(conn):
        yield from conn.client_send("bulk", size)

    def server_proc(conn):
        yield conn.server_recv()
        arrivals.append(sim.now)

    for conn in conns:
        sim.process(client_proc(conn))
        sim.process(server_proc(conn))
    sim.run()
    assert len(arrivals) == 2
    first, second = sorted(arrivals)
    # the second message cannot finish before ~2x the serialization time
    one_serialization = net.profile.wire_size(size) * 8 / profile.bandwidth_bps
    assert second - first >= one_serialization * 0.9


def test_negative_size_rejected():
    sim, net, server, client, conn = make_pair()

    def client_proc():
        yield from conn.client_send("x", -5)

    sim.process(client_proc())
    with pytest.raises(ValueError):
        sim.run()
