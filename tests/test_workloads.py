"""Tests for workload and dataset generators."""

import math
import random

import pytest

from repro.client.base import OP_INSERT, OP_SEARCH
from repro.rtree import Rect, bulk_load
from repro.workloads import (
    FixedScale,
    PowerLawScale,
    generate_rea02,
    generate_rea02_queries,
    make_workload,
    power_law_sample,
    scale_generator,
    search_insert_mix,
    search_only,
    skewed_insert_center,
    skewed_insert_rect,
    uniform_dataset,
    uniform_scale_rect,
)


class TestScales:
    def test_uniform_scale_bounds(self):
        rng = random.Random(0)
        for _ in range(500):
            r = uniform_scale_rect(rng, 0.01)
            assert 0 <= r.width <= 0.01
            assert 0 <= r.height <= 0.01
            assert 0 <= r.minx and r.maxx <= 1
            assert 0 <= r.miny and r.maxy <= 1

    def test_uniform_scale_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            uniform_scale_rect(rng, 0.0)
        with pytest.raises(ValueError):
            uniform_scale_rect(rng, 1.5)

    def test_power_law_within_bounds(self):
        rng = random.Random(1)
        for _ in range(1000):
            t = power_law_sample(rng, 1e-5, 1e-2)
            assert 1e-5 <= t <= 1e-2

    def test_power_law_skews_small(self):
        """With alpha=0.99 most of the mass sits at small scales (log-
        uniform-ish): the median is far below the arithmetic midpoint."""
        rng = random.Random(2)
        samples = sorted(power_law_sample(rng, 1e-5, 1e-2)
                         for _ in range(4000))
        median = samples[len(samples) // 2]
        assert median < 1e-3  # midpoint would be ~5e-3

    def test_power_law_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            power_law_sample(rng, 1e-2, 1e-5)
        with pytest.raises(ValueError):
            power_law_sample(rng, 1e-5, 1e-2, alpha=1.0)

    def test_scale_generator_parsing(self):
        assert isinstance(scale_generator("0.00001"), FixedScale)
        assert isinstance(scale_generator("powerlaw"), PowerLawScale)
        assert scale_generator("0.01").scale == 0.01

    def test_generators_produce_rects(self):
        rng = random.Random(3)
        for gen in (FixedScale(0.001), PowerLawScale()):
            r = gen.next_rect(rng)
            assert isinstance(r, Rect)


class TestDatasets:
    def test_uniform_dataset_shape(self):
        items = uniform_dataset(100, seed=1)
        assert len(items) == 100
        assert [i for _r, i in items] == list(range(100))
        for r, _i in items:
            assert r.width <= 1e-4 and r.height <= 1e-4

    def test_uniform_dataset_reproducible(self):
        assert uniform_dataset(50, seed=5) == uniform_dataset(50, seed=5)
        assert uniform_dataset(50, seed=5) != uniform_dataset(50, seed=6)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            uniform_dataset(-1)

    def test_skewed_centers_cover_all_quadrants(self):
        rng = random.Random(7)
        quadrants = set()
        for _ in range(500):
            x, y = skewed_insert_center(rng)
            assert 0 <= x <= 1 and 0 <= y <= 1
            quadrants.add((x > 0.5, y > 0.5))
        assert len(quadrants) == 4

    def test_skewed_center_marginal_matches_power_law(self):
        """The paper draws t from f(t) ∝ t^-0.99 on (0.5, 1]; with that
        exponent P(t < 0.75) ≈ 58% (mildly skewed toward 0.5)."""
        rng = random.Random(9)
        n = 6000
        below = 0
        for _ in range(n):
            x, _y = skewed_insert_center(rng)
            t = x if x > 0.5 else 1.0 - x  # undo the reflection
            if t < 0.75:
                below += 1
        expected = (0.75 ** 0.01 - 0.5 ** 0.01) / (1.0 - 0.5 ** 0.01)
        assert below / n == pytest.approx(expected, abs=0.03)

    def test_skewed_insert_rect_in_bounds(self):
        rng = random.Random(8)
        for _ in range(500):
            r = skewed_insert_rect(rng, 0.01)
            assert 0 <= r.minx and r.maxx <= 1
            assert 0 <= r.miny and r.maxy <= 1


class TestRea02:
    def test_size_and_ids(self):
        items = generate_rea02(n=50_000, seed=1)
        assert len(items) == 50_000
        assert sorted(i for _r, i in items) == list(range(50_000))

    def test_rects_in_unit_square(self):
        items = generate_rea02(n=10_000, seed=2)
        for r, _i in items:
            assert 0 <= r.minx and r.maxx <= 1
            assert 0 <= r.miny and r.maxy <= 1

    def test_street_segments_are_thin(self):
        items = generate_rea02(n=5_000, seed=3)
        thin = sum(
            1 for r, _i in items
            if min(r.width, r.height) < 0.25 * max(r.width, r.height, 1e-12)
        )
        assert thin / len(items) > 0.9

    def test_insertion_order_is_locally_correlated(self):
        """Consecutive inserts inside a sub-region are spatially close;
        region boundaries cause jumps."""
        sub = 1000
        items = generate_rea02(n=10 * sub, subregion_objects=sub, seed=4)
        consecutive = []
        for (a, _), (b, _) in zip(items, items[1:]):
            (ax, ay), (bx, by) = a.center(), b.center()
            consecutive.append(math.hypot(ax - bx, ay - by))
        rng = random.Random(11)
        shuffled = []
        for _ in range(len(consecutive)):
            (a, _), (b, _) = rng.choice(items), rng.choice(items)
            (ax, ay), (bx, by) = a.center(), b.center()
            shuffled.append(math.hypot(ax - bx, ay - by))
        consecutive.sort()
        shuffled.sort()
        median_consecutive = consecutive[len(consecutive) // 2]
        median_random = shuffled[len(shuffled) // 2]
        # insertion order walks the space locally
        assert median_consecutive < median_random / 5

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_rea02(n=0)
        with pytest.raises(ValueError):
            generate_rea02(n=100, subregion_objects=2)
        with pytest.raises(ValueError):
            generate_rea02_queries(-1)

    def test_queries_return_50_to_150(self):
        n = 40_000
        items = generate_rea02(n=n, seed=5)
        tree = bulk_load(items, max_entries=32)
        queries = generate_rea02_queries(40, dataset_size=n, seed=6)
        counts = [tree.search(q).count for q in queries]
        mean = sum(counts) / len(counts)
        # the paper: 50-150 results, average ~100.  Allow generator slack.
        assert 40 <= mean <= 220
        assert sum(1 for c in counts if c > 0) == len(counts)


class TestMixes:
    def test_search_only(self):
        rng = random.Random(1)
        reqs = search_only(rng, FixedScale(0.001), 50)
        assert len(reqs) == 50
        assert all(r.op == OP_SEARCH for r in reqs)

    def test_hybrid_fraction(self):
        rng = random.Random(2)
        reqs = search_insert_mix(rng, FixedScale(0.001), 2000, client_id=3,
                                 insert_fraction=0.1)
        inserts = [r for r in reqs if r.op == OP_INSERT]
        assert 0.05 < len(inserts) / len(reqs) < 0.15
        ids = [r.data_id for r in inserts]
        assert len(ids) == len(set(ids))

    def test_hybrid_ids_disjoint_across_clients(self):
        rng1, rng2 = random.Random(3), random.Random(3)
        a = search_insert_mix(rng1, FixedScale(0.001), 500, client_id=1)
        b = search_insert_mix(rng2, FixedScale(0.001), 500, client_id=2)
        ids_a = {r.data_id for r in a if r.op == OP_INSERT}
        ids_b = {r.data_id for r in b if r.op == OP_INSERT}
        assert not ids_a & ids_b

    def test_hybrid_fraction_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            search_insert_mix(rng, FixedScale(0.001), 10, 0,
                              insert_fraction=1.5)

    def test_make_workload_kinds(self):
        search_fn = make_workload("search", scale_spec="0.01", n_requests=10)
        reqs = search_fn(0, random.Random(0))
        assert len(reqs) == 10

        hybrid_fn = make_workload("hybrid", scale_spec="0.01", n_requests=10)
        assert len(hybrid_fn(0, random.Random(0))) == 10

        queries = [Rect(0, 0, 0.1, 0.1)]
        query_fn = make_workload("queries", n_requests=5, queries=queries)
        reqs = query_fn(0, random.Random(0))
        assert all(r.rect == queries[0] for r in reqs)

    def test_make_workload_unknown_kind(self):
        with pytest.raises(ValueError):
            make_workload("scan")

    def test_query_stream_empty_rejected(self):
        from repro.workloads import query_stream
        with pytest.raises(ValueError):
            query_stream([], random.Random(0), 5)
