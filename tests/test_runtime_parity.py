"""Runtime-layer parity: goldens, builder shape, and policy wiring.

The runtime refactor (ServerStack / PathPolicy / SessionFactory) carries
a hard determinism contract: RNG stream names and draw order are
preserved, so every scheme must reproduce the result fingerprints and
chaos fingerprints captured *before* the refactor, bit-identically.
The GOLDEN_* values below are those pre-refactor captures — do not
regenerate them to make a failing test pass; a mismatch means the
simulation's behaviour changed.
"""

import pytest

from repro.client.adaptive import CatfishSession, most_recent_utilization
from repro.client.bandit import BanditSession
from repro.client.fm_client import FmSession
from repro.client.predictors import most_recent
from repro.client.resilience import BreakerParams
from repro.cluster.builder import ExperimentRunner, run_experiment
from repro.cluster.config import ExperimentConfig
from repro.cluster.results import result_fingerprint
from repro.cluster.schemes import SCHEMES
from repro.faults import run_scenario
from repro.runtime import (
    Algorithm1Policy,
    AlwaysFmPolicy,
    AlwaysOffloadPolicy,
    BanditPolicy,
    PolicySession,
    SessionFactory,
)
from repro.shard.deploy import ShardedExperimentRunner

# -- golden fingerprints (captured at the pre-refactor seed commit) -------

GOLDEN_RUNS = {
    "catfish": "9a26b616d136b426",
    "catfish+hybrid": "8036cd15fa2004ec",
    "catfish-bandit": "8e13341a63b212cc",
    "catfish-ewma": "e661c415a0880bc4",
    "catfish-polling": "1d3a5247fa6d859f",
    "catfish-sharded": "ac277f20b080e03e",
    "catfish-sharded+hybrid": "6c50012eaa042c7f",
    "catfish-single-issue": "e524738d2309c826",
    "catfish-trend": "b5d46f6cc58f3930",
    "fast-messaging": "2083873c011f1bbe",
    "fast-messaging-event": "8e1b1664b1c8733f",
    "rdma-offloading": "750b3cfc938a4495",
    "rdma-offloading-multi": "c225a9f60cd7fc87",
    "tcp": "0521d1b31a63d5d7",
}

GOLDEN_CHAOS = {
    "chaos-combo": "a0c84b80ec25e8f1",
    "heartbeat-blackout": "e06962d2a3fdfced",
    "latency-spike": "6a7ee3635da91eb9",
    "link-loss": "747980c21edbc87f",
    "nic-read-stall": "94e7e04486194253",
    "overload-shed": "93047475084e5fef",
    "shard-loss": "c09891cfab5165d1",
    "slow-client": "7cac61784274a673",
    "worker-crash": "0782a818682ac5c4",
    # Updated when _read_valid stopped sleeping a full backoff *after*
    # its final failed attempt (the caller restarts or fails immediately,
    # so the trailing sleep was pure added latency).  Write storms are
    # the one scenario that exhausts read retries, so only this
    # fingerprint moved; verified by restoring the trailing sleep and
    # recovering the previous digest 6718b501b19046ed exactly.
    "write-storm": "1e7d20f012474512",
}

#: Scheme offload mode → expected (session type, policy type).
EXPECTED_SHAPE = {
    "never": (PolicySession, AlwaysFmPolicy),
    "always": (PolicySession, AlwaysOffloadPolicy),
    "adaptive": (CatfishSession, Algorithm1Policy),
    "bandit": (BanditSession, BanditPolicy),
}


def golden_config(scheme, workload="search", **overrides):
    """The exact configuration the goldens were captured under."""
    fabric = "eth-1g" if SCHEMES[scheme].transport == "tcp" else "ib-100g"
    base = dict(
        scheme=scheme, fabric=fabric, n_clients=4, requests_per_client=40,
        dataset_size=2000, server_cores=4, workload_kind=workload, seed=0,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


# -- fingerprint identity across the refactor ----------------------------

@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_scheme_fingerprint_matches_pre_refactor_golden(scheme):
    result = run_experiment(golden_config(scheme))
    assert result_fingerprint(result) == GOLDEN_RUNS[scheme]


@pytest.mark.parametrize("scheme", ["catfish", "catfish-sharded"])
def test_hybrid_workload_fingerprint_matches_golden(scheme):
    # Hybrid exercises the write path (always fast messaging) through
    # the policy layer.
    result = run_experiment(golden_config(scheme, workload="hybrid"))
    assert result_fingerprint(result) == GOLDEN_RUNS[scheme + "+hybrid"]


@pytest.mark.parametrize("name", sorted(GOLDEN_CHAOS))
def test_chaos_fingerprint_matches_pre_refactor_golden(name):
    report = run_scenario(name, seed=0, n_clients=2,
                          requests_per_client=150, dataset_size=1000)
    assert report.fingerprint() == GOLDEN_CHAOS[name]


def test_back_to_back_runs_are_deterministic():
    a = run_experiment(golden_config("catfish"))
    b = run_experiment(golden_config("catfish"))
    assert result_fingerprint(a) == result_fingerprint(b)


# -- builder parity: one assembly path, same shape everywhere ------------

def tiny_config(scheme, **overrides):
    base = dict(scheme=scheme, fabric="ib-100g", n_clients=2,
                requests_per_client=1, dataset_size=60, server_cores=2,
                seed=0)
    base.update(overrides)
    return ExperimentConfig(**base)


RDMA_SCHEMES = sorted(
    name for name, spec in SCHEMES.items() if spec.transport != "tcp"
)


@pytest.mark.parametrize("scheme", RDMA_SCHEMES)
def test_single_and_sharded_builders_produce_same_session_shape(scheme):
    spec = SCHEMES[scheme]
    session_type, policy_type = EXPECTED_SHAPE[spec.offload]

    single = ExperimentRunner(tiny_config(scheme, n_shards=1))
    for session in single.sessions:
        assert type(session) is session_type
        assert type(session.policy) is policy_type
        assert session.policy.name == spec.policy

    sharded = ShardedExperimentRunner(tiny_config(scheme, n_shards=2))
    for per_client in sharded.sessions:
        assert len(per_client) == 2
        for session in per_client:
            assert type(session) is session_type
            assert type(session.policy) is policy_type
            assert session.policy.name == spec.policy


def test_tcp_builder_produces_tcp_sessions():
    from repro.client.tcp_client import TcpSession
    runner = ExperimentRunner(tiny_config("tcp", fabric="eth-1g"))
    assert all(type(s) is TcpSession for s in runner.sessions)


def test_duplicated_assembly_paths_are_gone():
    # The acceptance criterion: exactly one session-assembly path.
    assert not hasattr(ExperimentRunner, "_build_session")
    assert not hasattr(ShardedExperimentRunner, "_build_shard_session")
    assert isinstance(ExperimentRunner(tiny_config("catfish")).factory,
                      SessionFactory)


def test_adaptive_sessions_share_stream_names_across_deployments():
    # Both deployments must feed the policy from a stream named
    # "backoff" and the FM session from "retry" — the determinism
    # contract is stream *names*, which this guards structurally.
    single = ExperimentRunner(tiny_config("catfish"))
    sharded = ShardedExperimentRunner(tiny_config("catfish", n_shards=2))
    sessions = list(single.sessions) + [
        s for per_client in sharded.sessions for s in per_client
    ]
    for session in sessions:
        assert isinstance(session.fm, FmSession)
        assert session.policy.rng is not None
        assert session.engine is not None


# -- bandit parity (tracer + metrics + breaker, sharded support) ---------

def test_bandit_runs_sharded():
    config = tiny_config("catfish-bandit", n_shards=3,
                         requests_per_client=5)
    result = ShardedExperimentRunner(config).run()
    assert result.total_requests == config.total_requests
    assert result.extra["n_shards"] == 3.0


def test_bandit_gets_breaker_and_tracer_from_config():
    config = tiny_config("catfish-bandit", breaker=BreakerParams(),
                         trace=True)
    runner = ExperimentRunner(config)
    for session in runner.sessions:
        assert session.breaker is not None
        assert session.tracer is runner.tracer


def test_bandit_metrics_registered_in_both_runners():
    single = ExperimentRunner(tiny_config("catfish-bandit"))
    single.run()
    names = set(single.metrics.snapshot())
    assert {"bandit.explorations", "bandit.mode_fm",
            "bandit.mode_offload"} <= names

    sharded = ShardedExperimentRunner(
        tiny_config("catfish-bandit", n_shards=2, requests_per_client=3))
    sharded.run()
    assert "bandit.mode_fm" in set(sharded.metrics.snapshot())


def test_sharded_adaptive_aggregates_now_registered():
    runner = ShardedExperimentRunner(
        tiny_config("catfish", n_shards=2, requests_per_client=3))
    runner.run()
    names = set(runner.metrics.snapshot())
    assert {"adaptive.decisions_offload", "adaptive.decisions_fm",
            "offload.chunks_fetched"} <= names


# -- satellite: predictor dedupe ----------------------------------------

def test_most_recent_utilization_is_the_predictors_implementation():
    assert most_recent_utilization is most_recent
    assert most_recent_utilization(0.42) == 0.42
