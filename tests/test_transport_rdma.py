"""Unit tests for the RDMA verbs model."""

import pytest

from repro.hw import Host, MemoryError_
from repro.net import IB_100G, Network
from repro.sim import Simulator
from repro.transport import (
    READ,
    RECV_IMM,
    WRITE,
    WRITE_IMM,
    CompletionChannel,
    RdmaError,
    connect,
)


class FakeMemoryTarget:
    """Minimal rdma_read/rdma_write target for transport tests."""

    def __init__(self):
        self.cells = {}
        self.write_log = []
        self.read_log = []

    def rdma_write(self, address, length, payload, now):
        self.cells[address] = payload
        self.write_log.append((address, length, payload, now))

    def rdma_read(self, address, length, now):
        self.read_log.append((address, length, now))
        return self.cells.get(address, b"\x00" * length)


def make_rdma_pair():
    sim = Simulator()
    net = Network(sim, IB_100G)
    server = Host(sim, "server", IB_100G)
    client = Host(sim, "client", IB_100G, cores=2)
    net.attach_server(server)
    region = server.memory.register(1 << 20, name="test")
    target = FakeMemoryTarget()
    server.memory.bind(region.rkey, target)
    client_qp, server_qp = connect(sim, net, client, server)
    return sim, net, server, client, region, target, client_qp, server_qp


def test_write_lands_at_remote_target():
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()

    def proc():
        yield cqp.post_write(region.rkey, region.base, b"hello", 5)

    sim.process(proc())
    sim.run()
    assert target.cells[region.base] == b"hello"


def test_write_completion_opcode():
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()

    def proc():
        wc = yield cqp.post_write(region.rkey, region.base, b"x", 1)
        return wc.opcode

    p = sim.process(proc())
    sim.run()
    assert p.value == WRITE
    assert len(cqp.cq) == 1  # the signaled completion is also in the CQ


def test_unsignaled_write_skips_local_cq():
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()

    def proc():
        yield cqp.post_write(region.rkey, region.base, b"x", 1,
                             signaled=False)

    sim.process(proc())
    sim.run()
    assert len(cqp.cq) == 0


def test_write_with_imm_notifies_remote_cq():
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()

    def client_proc():
        wc = yield cqp.post_write(region.rkey, region.base, b"req", 3,
                                  imm=77)
        return wc.opcode

    def server_proc():
        wc = yield sqp.cq.wait()
        return (wc.opcode, wc.imm, wc.length)

    p_client = sim.process(client_proc())
    p_server = sim.process(server_proc())
    sim.run()
    assert p_client.value == WRITE_IMM
    assert p_server.value == (RECV_IMM, 77, 3)


def test_plain_write_does_not_notify_remote():
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()

    def proc():
        yield cqp.post_write(region.rkey, region.base, b"silent", 6)

    sim.process(proc())
    sim.run()
    assert len(sqp.cq) == 0


def test_imm_write_wakes_completion_channel():
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()
    channel = CompletionChannel(sim)
    sqp.cq.attach_channel(channel)
    woken = []

    def server_proc():
        yield channel.wait()
        woken.append(sim.now)

    def client_proc():
        yield cqp.post_write(region.rkey, region.base, b"r", 1, imm=1)

    sim.process(server_proc())
    sim.process(client_proc())
    sim.run()
    assert len(woken) == 1
    assert channel.wakeups == 1


def test_read_returns_remote_data():
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()
    target.cells[region.base + 64] = b"node-bytes"

    def proc():
        data = yield cqp.post_read(region.rkey, region.base + 64, 10)
        return data

    p = sim.process(proc())
    sim.run()
    assert p.value == b"node-bytes"


def test_read_consumes_zero_remote_cpu():
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()

    def proc():
        for _ in range(50):
            yield cqp.post_read(region.rkey, region.base, 4096)

    sim.process(proc())
    sim.run()
    assert server.cpu.total_work_seconds == 0.0
    assert server.cpu.utilization() == 0.0


def test_write_consumes_zero_remote_cpu():
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()

    def proc():
        for _ in range(50):
            yield cqp.post_write(region.rkey, region.base, b"x" * 256, 256,
                                 imm=1)

    sim.process(proc())
    sim.run()
    assert server.cpu.total_work_seconds == 0.0


def test_read_latency_exceeds_write_latency():
    """RDMA Read needs a full round trip; Write completes one-way faster
    at the remote (paper Fig 9a shows Read > Write for small sizes)."""
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()

    def write_then_read():
        t0 = sim.now
        yield cqp.post_write(region.rkey, region.base, b"x", 8)
        write_rtt = sim.now - t0
        t1 = sim.now
        yield cqp.post_read(region.rkey, region.base, 8)
        read_rtt = sim.now - t1
        return write_rtt, read_rtt

    p = sim.process(write_then_read())
    sim.run()
    write_rtt, read_rtt = p.value
    assert read_rtt > 0
    # Data lands at the remote after ~one-way for writes; the ACK overlaps
    # nothing here so compare the remote-visible latency instead:
    data_landing = target.write_log[0][3]
    assert data_landing < read_rtt


def test_small_write_latency_is_microseconds():
    """Calibration: small RDMA Write lands in ~1-3 us (paper Fig 9)."""
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()

    def proc():
        yield cqp.post_write(region.rkey, region.base, b"y" * 16, 16)

    sim.process(proc())
    sim.run()
    landing = target.write_log[0][3]
    assert 0.5e-6 < landing < 3e-6


def test_read_out_of_bounds_fails():
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()

    def proc():
        try:
            yield cqp.post_read(region.rkey, region.end, 64)
        except MemoryError_:
            return "fault"

    p = sim.process(proc())
    sim.run()
    assert p.value == "fault"


def test_write_bad_rkey_fails():
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()

    def proc():
        try:
            yield cqp.post_write(999, region.base, b"x", 1)
        except MemoryError_:
            return "fault"

    p = sim.process(proc())
    sim.run()
    assert p.value == "fault"


def test_unbound_region_read_fails():
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()
    bare = server.memory.register(4096, name="unbound")

    def proc():
        try:
            yield cqp.post_read(bare.rkey, bare.base, 8)
        except RdmaError:
            return "no-target"

    p = sim.process(proc())
    sim.run()
    assert p.value == "no-target"


def test_posting_on_destroyed_qp_raises():
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()
    cqp.destroy()
    with pytest.raises(RdmaError):
        cqp.post_write(region.rkey, region.base, b"x", 1)


def test_outstanding_read_limit_serializes_excess():
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()
    limit = client.nic.max_outstanding_reads
    n = limit + 4

    def proc():
        events = [
            cqp.post_read(region.rkey, region.base, 64) for _ in range(n)
        ]
        for ev in events:
            yield ev

    sim.process(proc())
    sim.run()
    assert len(target.read_log) == n
    # snapshot times: the first `limit` can be concurrent, the rest later
    times = sorted(t for _a, _l, t in target.read_log)
    assert times[-1] > times[0]


def test_counters_track_traffic():
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()

    def proc():
        yield cqp.post_write(region.rkey, region.base, b"abc", 3)
        yield cqp.post_read(region.rkey, region.base, 128)

    sim.process(proc())
    sim.run()
    assert cqp.writes_posted == 1
    assert cqp.reads_posted == 1
    assert cqp.bytes_written == 3
    assert cqp.bytes_read == 128


def test_concurrent_reads_pipeline():
    """Multi-issue foundation: k concurrent reads finish much faster than
    k sequential reads (paper Fig 8)."""
    sim, net, server, client, region, target, cqp, sqp = make_rdma_pair()
    k = 8

    def sequential():
        t0 = sim.now
        for _ in range(k):
            yield cqp.post_read(region.rkey, region.base, 4096)
        return sim.now - t0

    def concurrent():
        t0 = sim.now
        events = [cqp.post_read(region.rkey, region.base, 4096)
                  for _ in range(k)]
        for ev in events:
            yield ev
        return sim.now - t0

    p_seq = sim.process(sequential())
    sim.run()
    seq_time = p_seq.value

    sim2, net2, server2, client2, region2, target2, cqp2, sqp2 = make_rdma_pair()

    def concurrent2():
        t0 = sim2.now
        events = [cqp2.post_read(region2.rkey, region2.base, 4096)
                  for _ in range(k)]
        for ev in events:
            yield ev
        return sim2.now - t0

    p_con = sim2.process(concurrent2())
    sim2.run()
    con_time = p_con.value
    assert con_time < seq_time * 0.6
