"""Unit tests for the CPU pool and the OS-scheduler model."""

import random

import pytest

from repro.hw import (
    EVENT_WAKEUP_COST,
    POLL_GRANULARITY,
    CorePool,
    SchedulerModel,
)
from repro.sim import Simulator


class TestCorePool:
    def test_parallel_execution_up_to_capacity(self):
        sim = Simulator()
        pool = CorePool(sim, capacity=2)
        finish = []

        def work(sim, pool, tag):
            yield from pool.execute(10.0)
            finish.append((tag, sim.now))

        for tag in "abc":
            sim.process(work(sim, pool, tag))
        sim.run()
        # a and b run in parallel; c waits for a free core
        assert finish == [("a", 10.0), ("b", 10.0), ("c", 20.0)]

    def test_utilization_accounting(self):
        sim = Simulator()
        pool = CorePool(sim, capacity=2)

        def work(sim, pool):
            yield from pool.execute(5.0)

        sim.process(work(sim, pool))
        sim.run(until=10.0)
        # one core busy for 5 of 10 seconds over 2 cores = 0.25
        assert pool.utilization() == pytest.approx(0.25)

    def test_total_work_recorded(self):
        sim = Simulator()
        pool = CorePool(sim, capacity=1)

        def work(sim, pool):
            yield from pool.execute(3.0)
            yield from pool.execute(4.0)

        sim.process(work(sim, pool))
        sim.run()
        assert pool.total_work_seconds == pytest.approx(7.0)

    def test_zero_cost_work_is_legal(self):
        sim = Simulator()
        pool = CorePool(sim, capacity=1)

        def work(sim, pool):
            yield from pool.execute(0.0)
            return sim.now

        p = sim.process(work(sim, pool))
        sim.run()
        assert p.value == 0.0

    def test_negative_cost_rejected(self):
        sim = Simulator()
        pool = CorePool(sim, capacity=1)

        def work(sim, pool):
            yield from pool.execute(-1.0)

        sim.process(work(sim, pool))
        with pytest.raises(ValueError):
            sim.run()

    def test_run_queue_length(self):
        sim = Simulator()
        pool = CorePool(sim, capacity=1)
        samples = []

        def work(sim, pool):
            yield from pool.execute(10.0)

        def probe(sim, pool, samples):
            yield sim.timeout(1.0)
            samples.append((pool.busy_cores, pool.run_queue_length))

        sim.process(work(sim, pool))
        sim.process(work(sim, pool))
        sim.process(work(sim, pool))
        sim.process(probe(sim, pool, samples))
        sim.run()
        assert samples == [(1, 2)]

    def test_window_utilization_resets(self):
        sim = Simulator()
        pool = CorePool(sim, capacity=1)

        def work(sim, pool, out):
            yield from pool.execute(4.0)
            out.append(pool.window_utilization())
            yield sim.timeout(4.0)
            out.append(pool.window_utilization())

        out = []
        sim.process(work(sim, pool, out))
        sim.run()
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(0.0)


class TestSchedulerModel:
    def test_no_oversubscription_is_poll_granularity(self):
        model = SchedulerModel(cores=28)
        assert model.polling_wakeup_delay(10) == POLL_GRANULARITY
        assert model.polling_wakeup_delay(28) == POLL_GRANULARITY

    def test_oversubscribed_delay_grows_quadratically(self):
        model = SchedulerModel(cores=28, rng=random.Random(1))
        mean_80 = model.mean_polling_wakeup_delay(80)
        mean_320 = model.mean_polling_wakeup_delay(320)
        # 4x the threads -> ~16x the oversubscription penalty
        penalty_80 = mean_80 - POLL_GRANULARITY
        penalty_320 = mean_320 - POLL_GRANULARITY
        assert penalty_320 / penalty_80 == pytest.approx(16.0)

    def test_sampled_delay_within_bounds(self):
        model = SchedulerModel(cores=4, quantum=1e-5, rng=random.Random(7))
        ratio = 16 / 4
        upper = POLL_GRANULARITY + ratio * ratio * 1e-5
        for _ in range(200):
            d = model.polling_wakeup_delay(16)
            assert POLL_GRANULARITY <= d <= upper

    def test_sampled_mean_approaches_model_mean(self):
        model = SchedulerModel(cores=4, quantum=1e-5, rng=random.Random(3))
        samples = [model.polling_wakeup_delay(16) for _ in range(5000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(model.mean_polling_wakeup_delay(16),
                                     rel=0.05)

    def test_event_wakeup_is_constant(self):
        model = SchedulerModel(cores=2)
        assert model.event_wakeup_delay() == EVENT_WAKEUP_COST
        # Independent of thread count by construction: no argument exists.

    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerModel(cores=0)
        with pytest.raises(ValueError):
            SchedulerModel(cores=2, quantum=0)
        model = SchedulerModel(cores=2)
        with pytest.raises(ValueError):
            model.polling_wakeup_delay(0)

    def test_oversubscription_ratio(self):
        model = SchedulerModel(cores=10)
        assert model.oversubscription(5) == 1.0
        assert model.oversubscription(30) == 3.0
