"""Tests for the chunk codec, snapshots and version validation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtree import (
    CACHE_LINE,
    Entry,
    Node,
    RStarTree,
    Rect,
    SnapshotReader,
    WriteTracker,
    chunk_size,
    pack_node,
    snapshot_node,
    unpack_node,
    validate_snapshot,
)
from repro.rtree.serialize import payload_size, version_bytes
from repro.sim import Simulator


def leaf_with(n, seed=0):
    rng = random.Random(seed)
    node = Node(0, chunk_id=5)
    for i in range(n):
        x, y = rng.random(), rng.random()
        node.add(Entry(Rect(x, y, x + 0.01, y + 0.01), data_id=i))
    return node


class TestChunkFormat:
    def test_chunk_size_is_cache_line_aligned(self):
        for m in (4, 16, 64, 100):
            assert chunk_size(m) % CACHE_LINE == 0

    def test_chunk_size_covers_payload_and_versions(self):
        for m in (4, 64):
            assert chunk_size(m) >= payload_size(m) + version_bytes(m)

    def test_default_chunk_fits_4kb(self):
        # 64 entries: 16 + 64*40 = 2576 payload + versions -> under 4 KB
        assert chunk_size(64) <= 4096

    def test_round_trip_leaf(self):
        node = leaf_with(10)
        node.version = 3
        img = unpack_node(pack_node(node, 16), 16)
        assert img.level == 0
        assert img.chunk_id == 5
        assert len(img.entries) == 10
        for entry, orig in zip(img.entries, node.entries):
            assert entry.rect == orig.rect
            assert entry.ref == orig.data_id
        assert img.versions_consistent
        assert img.versions[0] == 3

    def test_round_trip_internal(self):
        parent = Node(1, chunk_id=9)
        for i in range(3):
            child = Node(0, chunk_id=100 + i)
            child.add(Entry(Rect(i, i, i + 1, i + 1), data_id=0))
            parent.add(Entry(child.mbr(), child=child))
        img = unpack_node(pack_node(parent, 8), 8)
        assert img.level == 1
        assert [e.ref for e in img.entries] == [100, 101, 102]

    def test_overfull_node_rejected(self):
        node = leaf_with(10)
        with pytest.raises(ValueError):
            pack_node(node, 8)

    def test_wrong_size_buffer_rejected(self):
        with pytest.raises(ValueError):
            unpack_node(b"\x00" * 10, 8)

    def test_corrupt_count_rejected(self):
        node = leaf_with(4)
        data = bytearray(pack_node(node, 8))
        data[4] = 0xFF  # count field low byte
        with pytest.raises(ValueError):
            unpack_node(bytes(data), 8)

    def test_torn_versions_detected(self):
        node = leaf_with(6)
        data = bytearray(pack_node(node, 8))
        data[payload_size(8)] ^= 0x01  # flip the first version byte
        img = unpack_node(bytes(data), 8)
        assert not img.versions_consistent

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 16), st.integers(0, 255), st.integers(1, 10**6))
    def test_round_trip_property(self, n, version, seed):
        node = leaf_with(n, seed=seed)
        node.version = version
        img = unpack_node(pack_node(node, 16), 16)
        assert len(img.entries) == n
        assert img.versions[0] == version % 256
        assert img.versions_consistent


class TestSnapshots:
    def test_snapshot_reflects_entries(self):
        node = leaf_with(5)
        view = snapshot_node(node)
        assert view.is_leaf
        assert len(view.entries) == 5
        assert not view.torn
        assert validate_snapshot(view)

    def test_snapshot_during_write_is_torn(self):
        node = leaf_with(5)
        node.begin_write()
        view = snapshot_node(node)
        assert view.torn
        assert not validate_snapshot(view)
        node.end_write()
        assert not snapshot_node(node).torn

    def test_intersecting_refs(self):
        node = Node(1, chunk_id=1)
        for i, rect in enumerate(
            [Rect(0, 0, 1, 1), Rect(2, 2, 3, 3), Rect(0.5, 0.5, 1.5, 1.5)]
        ):
            child = Node(0, chunk_id=10 + i)
            child.add(Entry(rect, data_id=0))
            node.add(Entry(rect, child=child))
        view = snapshot_node(node)
        assert view.intersecting_refs(Rect(0.9, 0.9, 1.1, 1.1)) == [10, 12]


class TestSnapshotReader:
    def test_reads_live_chunk(self):
        tree = RStarTree(max_entries=8)
        tree.insert(Rect(0.1, 0.1, 0.2, 0.2), 1)
        reader = SnapshotReader(tree.nodes)
        view = reader.read_chunk(tree.root.chunk_id, now=0.0)
        assert view.chunk_id == tree.root.chunk_id
        assert reader.reads == 1
        assert reader.torn_reads == 0

    def test_freed_chunk_reads_as_torn(self):
        tree = RStarTree(max_entries=8)
        reader = SnapshotReader(tree.nodes)
        view = reader.read_chunk(999, now=0.0)
        assert view.torn
        assert reader.torn_reads == 1

    def test_write_tracker_window(self):
        sim = Simulator()
        tree = RStarTree(max_entries=8)
        tree.insert(Rect(0.1, 0.1, 0.2, 0.2), 1)
        tracker = WriteTracker(sim)
        reader = SnapshotReader(tree.nodes)
        root = tree.root
        observations = []

        def writer():
            yield from tracker.write_window(
                [root], _delay(sim, 5.0)
            )

        def prober():
            yield sim.timeout(2.0)  # inside the window
            observations.append(reader.read_chunk(root.chunk_id, sim.now).torn)
            yield sim.timeout(5.0)  # t=7, after the window
            observations.append(reader.read_chunk(root.chunk_id, sim.now).torn)

        sim.process(writer())
        sim.process(prober())
        sim.run()
        assert observations == [True, False]
        assert tracker.total_writes == 1
        assert root.version == 1

    def test_write_window_closes_on_failure(self):
        sim = Simulator()
        node = Node(0, chunk_id=0)
        node.add(Entry(Rect(0, 0, 1, 1), data_id=1))
        tracker = WriteTracker(sim)

        def failing_body(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("interrupted mid-write")

        def writer():
            yield from tracker.write_window([node], failing_body(sim))

        sim.process(writer())
        with pytest.raises(RuntimeError):
            sim.run()
        assert node.active_writers == 0  # window was closed


def _delay(sim, duration):
    yield sim.timeout(duration)
