"""Unit tests for the link model: serialization, latency, FIFO queueing."""

import pytest

from repro.net import DuplexLink, Link
from repro.sim import Simulator


def run_transfer(sim, link, nbytes):
    def proc(sim, link, nbytes):
        yield from link.transfer(nbytes)
        return sim.now

    return sim.process(proc(sim, link, nbytes))


class TestLink:
    def test_transfer_time_is_serialization_plus_latency(self):
        sim = Simulator()
        # 8 bits/s -> 1 byte/s; latency 2 s
        link = Link(sim, bandwidth_bps=8.0, latency_s=2.0)
        p = run_transfer(sim, link, 10)
        sim.run()
        assert p.value == pytest.approx(12.0)

    def test_zero_byte_transfer_costs_latency_only(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=8.0, latency_s=2.0)
        p = run_transfer(sim, link, 0)
        sim.run()
        assert p.value == pytest.approx(2.0)

    def test_fifo_queueing(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=8.0, latency_s=0.0)
        p1 = run_transfer(sim, link, 10)
        p2 = run_transfer(sim, link, 10)
        sim.run()
        assert p1.value == pytest.approx(10.0)
        assert p2.value == pytest.approx(20.0)

    def test_propagation_pipelines_with_next_serialization(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=8.0, latency_s=5.0)
        p1 = run_transfer(sim, link, 10)
        p2 = run_transfer(sim, link, 10)
        sim.run()
        # second message starts serializing at t=10, not t=15
        assert p1.value == pytest.approx(15.0)
        assert p2.value == pytest.approx(25.0)

    def test_byte_counter(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=1e6, latency_s=0.0)
        run_transfer(sim, link, 500)
        run_transfer(sim, link, 300)
        sim.run()
        assert link.counter.total_bytes == 800
        assert link.counter.total_messages == 2

    def test_utilization(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=8.0, latency_s=0.0)  # 1 B/s
        run_transfer(sim, link, 5)
        sim.process(_idle(sim, 10.0))
        sim.run()
        assert link.utilization() == pytest.approx(0.5)

    def test_negative_size_rejected(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=1e6, latency_s=0.0)
        with pytest.raises(ValueError):
            link.serialization_delay(-1)

    def test_constructor_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, bandwidth_bps=0, latency_s=0.0)
        with pytest.raises(ValueError):
            Link(sim, bandwidth_bps=1e6, latency_s=-1.0)

    def test_window_bandwidth_bps(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=1e9, latency_s=0.0)

        def proc(sim, link, out):
            yield from link.transfer(125)  # 1000 bits
            # pad to exactly t=1s for a clean window
            yield sim.timeout(1.0 - sim.now)
            out.append(link.window_bandwidth_bps())

        out = []
        sim.process(proc(sim, link, out))
        sim.run()
        assert out[0] == pytest.approx(1000.0)


def _idle(sim, duration):
    yield sim.timeout(duration)


class TestDuplexLink:
    def test_directions_are_independent(self):
        sim = Simulator()
        duplex = DuplexLink(sim, bandwidth_bps=8.0, latency_s=0.0)
        p_tx = run_transfer(sim, duplex.tx, 10)
        p_rx = run_transfer(sim, duplex.rx, 10)
        sim.run()
        # Full duplex: both complete at t=10, no mutual queueing.
        assert p_tx.value == pytest.approx(10.0)
        assert p_rx.value == pytest.approx(10.0)

    def test_utilization_is_max_of_directions(self):
        sim = Simulator()
        duplex = DuplexLink(sim, bandwidth_bps=8.0, latency_s=0.0)
        run_transfer(sim, duplex.tx, 8)
        run_transfer(sim, duplex.rx, 2)
        sim.process(_idle(sim, 10.0))
        sim.run()
        assert duplex.utilization() == pytest.approx(0.8)
