"""Tests for the reader-writer lock and the tree lock manager."""

import pytest

from repro.rtree import RWLock, TreeLockManager
from repro.sim import Simulator


def _body(sim, log, tag, hold):
    log.append((f"{tag}-in", sim.now))
    yield sim.timeout(hold)
    log.append((f"{tag}-out", sim.now))


class TestRWLock:
    def test_readers_share(self):
        sim = Simulator()
        lock = RWLock(sim)
        log = []

        def reader(tag):
            yield from lock.read_locked(_body(sim, log, tag, 5.0))

        sim.process(reader("r1"))
        sim.process(reader("r2"))
        sim.run()
        assert ("r1-in", 0.0) in log
        assert ("r2-in", 0.0) in log

    def test_writer_excludes_readers(self):
        sim = Simulator()
        lock = RWLock(sim)
        log = []

        def writer():
            yield from lock.write_locked(_body(sim, log, "w", 5.0))

        def reader():
            yield sim.timeout(1.0)
            yield from lock.read_locked(_body(sim, log, "r", 1.0))

        sim.process(writer())
        sim.process(reader())
        sim.run()
        assert log.index(("w-out", 5.0)) < log.index(("r-in", 5.0))

    def test_writers_exclude_each_other(self):
        sim = Simulator()
        lock = RWLock(sim)
        log = []

        def writer(tag):
            yield from lock.write_locked(_body(sim, log, tag, 3.0))

        sim.process(writer("w1"))
        sim.process(writer("w2"))
        sim.run()
        assert ("w1-out", 3.0) in log
        assert ("w2-in", 3.0) in log

    def test_writer_preference_blocks_new_readers(self):
        sim = Simulator()
        lock = RWLock(sim)
        log = []

        def reader(tag, start, hold):
            yield sim.timeout(start)
            yield from lock.read_locked(_body(sim, log, tag, hold))

        def writer(start):
            yield sim.timeout(start)
            yield from lock.write_locked(_body(sim, log, "w", 2.0))

        sim.process(reader("r1", 0.0, 5.0))
        sim.process(writer(1.0))       # queued behind r1
        sim.process(reader("r2", 2.0, 1.0))  # must wait for the writer
        sim.run()
        # writer enters when r1 leaves; r2 only after the writer
        assert log.index(("w-in", 5.0)) < log.index(("r2-in", 7.0))

    def test_release_without_acquire_raises(self):
        sim = Simulator()
        lock = RWLock(sim)
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_lock_released_when_body_fails(self):
        sim = Simulator()
        lock = RWLock(sim)

        def failing(sim):
            yield sim.timeout(1.0)
            raise ValueError("boom")

        def writer():
            yield from lock.write_locked(failing(sim))

        sim.process(writer())
        with pytest.raises(ValueError):
            sim.run()
        assert lock.held == "free"

    def test_held_reporting(self):
        sim = Simulator()
        lock = RWLock(sim)
        states = []

        def reader():
            yield lock.acquire_read()
            states.append(lock.held)
            lock.release_read()
            states.append(lock.held)

        sim.process(reader())
        sim.run()
        assert states == ["read(1)", "free"]

    def test_acquisition_counters(self):
        sim = Simulator()
        lock = RWLock(sim)

        def work():
            yield lock.acquire_read()
            lock.release_read()
            yield lock.acquire_write()
            lock.release_write()

        sim.process(work())
        sim.run()
        assert lock.read_acquisitions == 1
        assert lock.write_acquisitions == 1


class TestTreeLockManager:
    def test_locks_created_lazily(self):
        sim = Simulator()
        mgr = TreeLockManager(sim)
        assert mgr.lock_count == 0
        lock = mgr.lock_for(7)
        assert mgr.lock_count == 1
        assert mgr.lock_for(7) is lock

    def test_read_guard_allows_concurrent_searches(self):
        sim = Simulator()
        mgr = TreeLockManager(sim)
        log = []

        def search(tag):
            yield from mgr.read_guard([1, 2, 3], _body(sim, log, tag, 4.0))

        sim.process(search("s1"))
        sim.process(search("s2"))
        sim.run()
        assert ("s1-in", 0.0) in log
        assert ("s2-in", 0.0) in log

    def test_write_guard_blocks_overlapping_search(self):
        sim = Simulator()
        mgr = TreeLockManager(sim)
        log = []

        def insert():
            yield from mgr.write_guard([2], _body(sim, log, "w", 5.0))

        def search():
            yield sim.timeout(1.0)
            yield from mgr.read_guard([1, 2], _body(sim, log, "s", 1.0))

        sim.process(insert())
        sim.process(search())
        sim.run()
        assert log.index(("w-out", 5.0)) < log.index(("s-in", 5.0))

    def test_disjoint_chunks_do_not_block(self):
        sim = Simulator()
        mgr = TreeLockManager(sim)
        log = []

        def insert(tag, chunks):
            yield from mgr.write_guard(chunks, _body(sim, log, tag, 5.0))

        sim.process(insert("w1", [1, 2]))
        sim.process(insert("w2", [3, 4]))
        sim.run()
        assert ("w1-in", 0.0) in log
        assert ("w2-in", 0.0) in log

    def test_sorted_acquisition_avoids_deadlock(self):
        sim = Simulator()
        mgr = TreeLockManager(sim)
        done = []

        def insert(tag, chunks):
            yield from mgr.write_guard(chunks, _noop(sim))
            done.append(tag)

        # Opposite declaration orders; sorted acquisition must not deadlock.
        for i in range(20):
            sim.process(insert(f"a{i}", [1, 2, 3]))
            sim.process(insert(f"b{i}", [3, 2, 1]))
        sim.run()
        assert len(done) == 40


def _noop(sim):
    yield sim.timeout(0.1)
