"""Unit tests for Resource / Store / Container primitives."""

import pytest

from repro.sim import BoundedStore, Container, Resource, Simulator, Store


def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    grants = []

    def user(sim, res, tag, hold):
        with res.request() as req:
            yield req
            grants.append((tag, sim.now))
            yield sim.timeout(hold)

    sim.process(user(sim, res, "a", 10.0))
    sim.process(user(sim, res, "b", 10.0))
    sim.process(user(sim, res, "c", 10.0))
    sim.run()
    assert grants == [("a", 0.0), ("b", 0.0), ("c", 10.0)]


def test_resource_fifo_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(sim, res, tag):
        with res.request() as req:
            yield req
            order.append(tag)
            yield sim.timeout(1.0)

    for tag in "abcd":
        sim.process(user(sim, res, tag))
    sim.run()
    assert order == list("abcd")


def test_resource_counts_and_queue_length():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder(sim, res):
        with res.request() as req:
            yield req
            yield sim.timeout(5.0)

    def observer(sim, res, samples):
        yield sim.timeout(1.0)
        samples.append((res.count, res.queue_length))

    samples = []
    sim.process(holder(sim, res))
    sim.process(holder(sim, res))
    sim.process(observer(sim, res, samples))
    sim.run()
    assert samples == [(1, 1)]


def test_resource_release_idempotent():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(sim, res):
        req = res.request()
        yield req
        req.release()
        req.release()  # second release is a no-op

    sim.process(user(sim, res))
    sim.run()
    assert res.count == 0


def test_resource_cancel_waiting_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    granted = []

    def holder(sim, res):
        with res.request() as req:
            yield req
            yield sim.timeout(10.0)

    def impatient(sim, res):
        req = res.request()  # queued behind holder
        yield sim.timeout(1.0)
        req.release()  # give up before being granted

    def patient(sim, res):
        with res.request() as req:
            yield req
            granted.append(sim.now)

    sim.process(holder(sim, res))
    sim.process(impatient(sim, res))
    sim.process(patient(sim, res))
    sim.run()
    # patient gets the slot as soon as holder releases, impatient never did
    assert granted == [10.0]


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim, store):
        yield sim.timeout(1.0)
        yield store.put("x")

    def consumer(sim, store):
        item = yield store.get()
        got.append((sim.now, item))

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert got == [(1.0, "x")]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim, store):
        for i in range(3):
            yield store.put(i)

    def consumer(sim, store):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert got == [0, 1, 2]


def test_store_multiple_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store, tag):
        item = yield store.get()
        got.append((tag, item))

    def producer(sim, store):
        yield sim.timeout(1.0)
        yield store.put("first")
        yield store.put("second")

    sim.process(consumer(sim, store, "c1"))
    sim.process(consumer(sim, store, "c2"))
    sim.process(producer(sim, store))
    sim.run()
    assert got == [("c1", "first"), ("c2", "second")]


def test_store_len():
    sim = Simulator()
    store = Store(sim)

    def producer(sim, store):
        yield store.put(1)
        yield store.put(2)

    sim.process(producer(sim, store))
    sim.run()
    assert len(store) == 2


def test_store_get_cancel():
    sim = Simulator()
    store = Store(sim)
    got = []

    def canceller(sim, store):
        get = store.get()
        yield sim.timeout(1.0)
        get.cancel()

    def consumer(sim, store):
        yield sim.timeout(2.0)
        item = yield store.get()
        got.append(item)

    def producer(sim, store):
        yield sim.timeout(3.0)
        yield store.put("only")

    sim.process(canceller(sim, store))
    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    # The cancelled getter must not swallow the item.
    assert got == ["only"]


def test_bounded_store_blocks_put_when_full():
    sim = Simulator()
    store = BoundedStore(sim, capacity=1)
    times = []

    def producer(sim, store):
        yield store.put("a")
        times.append(("put-a", sim.now))
        yield store.put("b")
        times.append(("put-b", sim.now))

    def consumer(sim, store):
        yield sim.timeout(5.0)
        yield store.get()

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert times == [("put-a", 0.0), ("put-b", 5.0)]


def test_container_get_blocks_until_level():
    sim = Simulator()
    tank = Container(sim, capacity=100.0, init=0.0)
    got = []

    def consumer(sim, tank):
        yield tank.get(10.0)
        got.append(sim.now)

    def producer(sim, tank):
        yield sim.timeout(1.0)
        yield tank.put(4.0)
        yield sim.timeout(1.0)
        yield tank.put(6.0)

    sim.process(consumer(sim, tank))
    sim.process(producer(sim, tank))
    sim.run()
    assert got == [2.0]
    assert tank.level == 0.0


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    tank = Container(sim, capacity=10.0, init=10.0)
    done = []

    def producer(sim, tank):
        yield tank.put(5.0)
        done.append(sim.now)

    def consumer(sim, tank):
        yield sim.timeout(3.0)
        yield tank.get(5.0)

    sim.process(producer(sim, tank))
    sim.process(consumer(sim, tank))
    sim.run()
    assert done == [3.0]
    assert tank.level == 10.0


def test_container_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Container(sim, capacity=5.0, init=6.0)
    tank = Container(sim, capacity=5.0)
    with pytest.raises(ValueError):
        tank.get(0.0)
    with pytest.raises(ValueError):
        tank.put(-1.0)


# -- synchronous completion fast paths ---------------------------------------


def test_uncontended_request_is_granted_synchronously():
    """An uncontended request is triggered (and processed) immediately,
    and yielding it resumes without a queue round-trip."""
    sim = Simulator()
    res = Resource(sim, capacity=2)
    req = res.request()
    assert req.triggered and req.processed
    assert res.count == 1
    order = []

    def worker(sim, res):
        with res.request() as r:
            yield r
            order.append(("granted", sim.now))
            yield sim.timeout(1.0)
        order.append(("released", sim.now))

    sim.process(worker(sim, res))
    sim.run()
    assert order == [("granted", 0.0), ("released", 1.0)]
    req.release()
    assert res.count == 0


def test_contended_request_still_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    grants = []

    def worker(sim, res, name, hold):
        with res.request() as r:
            yield r
            grants.append((name, sim.now))
            yield sim.timeout(hold)

    sim.process(worker(sim, res, "a", 2.0))
    sim.process(worker(sim, res, "b", 1.0))
    sim.process(worker(sim, res, "c", 1.0))
    sim.run()
    assert grants == [("a", 0.0), ("b", 2.0), ("c", 3.0)]


def test_store_get_with_buffered_item_is_synchronous():
    sim = Simulator()
    store = Store(sim)
    store.put_discard("x")
    get = store.get()
    assert get.triggered and get.processed
    assert get.value == "x"


def test_store_put_unbounded_is_synchronous_and_fifo_preserved():
    sim = Simulator()
    store = Store(sim)
    put = store.put("a")
    assert put.triggered and put.processed
    received = []

    def consumer(sim, store, n):
        for _ in range(n):
            item = yield store.get()
            received.append(item)

    store.put("b")
    sim.process(consumer(sim, store, 3))
    sim.process(iter_put(sim, store))
    sim.run()
    assert received == ["a", "b", "c"]


def iter_put(sim, store):
    yield sim.timeout(1.0)
    store.put("c")


def test_container_sync_paths_preserve_levels():
    sim = Simulator()
    tank = Container(sim, capacity=10.0, init=4.0)
    get = tank.get(3.0)
    assert get.triggered and get.processed
    assert tank.level == 1.0
    put = tank.put(9.0)
    assert put.triggered and put.processed
    assert tank.level == 10.0
