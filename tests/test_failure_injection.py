"""Failure injection: congestion, backpressure, stale memory, starvation.

These tests drive the system through the unpleasant conditions the paper's
design decisions exist for, and assert the designed-for behaviour.
"""

import random

import pytest

from repro import AdaptiveParams, ExperimentConfig, run_experiment
from repro.client import ClientStats, OffloadEngine
from repro.client.fm_client import FmSession
from repro.client.offload_client import OffloadError
from repro.hw import Host
from repro.msg import DEFAULT_RING_CAPACITY, SearchRequest, message_size
from repro.net import IB_100G, Network
from repro.rtree import Rect
from repro.server import (
    EVENT,
    FastMessagingServer,
    HeartbeatService,
    RTreeServer,
)
from repro.sim import Simulator
from repro.workloads import uniform_dataset


def build_stack(n_items=1500, cores=4, ring_capacity=DEFAULT_RING_CAPACITY,
                max_entries=16):
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=cores)
    net.attach_server(server_host)
    server = RTreeServer(sim, server_host,
                         uniform_dataset(n_items, seed=4),
                         max_entries=max_entries)
    fm_server = FastMessagingServer(sim, server, net, mode=EVENT,
                                    ring_capacity=ring_capacity)
    client_host = Host(sim, "client", IB_100G, cores=2)
    conn = fm_server.open_connection(client_host)
    stats = ClientStats()
    fm = FmSession(sim, conn, 0, stats)
    return sim, net, server_host, server, fm_server, conn, fm, stats


class TestHeartbeatLoss:
    def test_client_stays_on_fm_when_heartbeats_never_arrive(self):
        """Algorithm 1's rule: no heartbeat -> do NOT offload, because
        the cause may be a saturated server link."""
        result = run_experiment(ExperimentConfig(
            scheme="catfish",
            n_clients=12,
            requests_per_client=80,
            dataset_size=2000,
            max_entries=16,
            server_cores=1,  # definitely saturated
            # Heartbeat interval far beyond the run duration = total loss.
            heartbeat_interval=100.0,
            adaptive=AdaptiveParams(N=8, T=0.95, Inv=0.2e-3),
            seed=6,
        ))
        assert result.offload_fraction == 0.0
        assert result.server_cpu_utilization > 0.9

    def test_dropped_heartbeats_counted_under_ring_exhaustion(self):
        sim, net, sh, server, fm_server, conn, fm, stats = build_stack()
        # Fill the response ring with reservations that never complete.
        while conn.response_ring.try_reserve(SearchRequest(0, Rect(0, 0, 1, 1))):
            pass
        service = HeartbeatService(sim, sh.cpu.window_utilization,
                                   interval=1e-3)
        service.subscribe(conn.response_ring,
                          lambda hb: conn.server_post_response(hb))
        service.start()
        sim.run(until=0.01)
        assert service.beats_dropped >= 9
        assert fm.heartbeats_seen == 0


class TestRingBackpressure:
    def test_tiny_ring_still_delivers_huge_responses(self):
        """A response far larger than the ring must flow through CONT/END
        segmentation + flow control without deadlock or loss."""
        sim, net, sh, server, fm_server, conn, fm, stats = build_stack(
            n_items=3000,
            ring_capacity=20_000,  # ~2 segments' worth of space
        )

        def client():
            matches = yield from fm.search(Rect(0, 0, 1, 1))
            return matches

        p = sim.process(client())
        sim.run_until_triggered(p, limit=10.0)
        assert len(p.value) == 3000
        # the ring really was cycled many times
        assert conn.response_ring.messages_received > 10
        assert conn.response_ring.high_watermark <= 20_000

    def test_many_clients_tiny_rings(self):
        sim = Simulator()
        net = Network(sim, IB_100G)
        server_host = Host(sim, "server", IB_100G, cores=4)
        net.attach_server(server_host)
        server = RTreeServer(sim, server_host,
                             uniform_dataset(2000, seed=5), max_entries=16)
        fm_server = FastMessagingServer(sim, server, net, mode=EVENT,
                                        ring_capacity=16_384)
        done = []

        def client(i):
            host = Host(sim, f"c{i}", IB_100G, cores=2)
            conn = fm_server.open_connection(host)
            fm = FmSession(sim, conn, i, ClientStats())
            for _ in range(5):
                yield from fm.search(Rect(0, 0, 1, 1))
            done.append(i)

        for i in range(6):
            sim.process(client(i))
        sim.run()
        assert sorted(done) == list(range(6))


class TestStaleMemory:
    def test_reads_of_freed_chunks_eventually_recover(self):
        """Delete-heavy churn frees chunks an offloading client may still
        reference; validation must reject them and the search restart."""
        sim, net, sh, server, fm_server, conn, fm, stats = build_stack(
            n_items=400, max_entries=8
        )
        engine = OffloadEngine(sim, conn.client_end,
                               server.offload_descriptor(), server.costs,
                               stats)
        items = [(e.rect, e.data_id)
                 for node in server.tree.nodes.values() if node.is_leaf
                 for e in node.entries]
        rng = random.Random(7)

        def churner():
            # delete then reinsert everything, twice
            for _round in range(2):
                for rect, data_id in items:
                    yield from server.execute_delete(rect, data_id)
                for rect, data_id in items:
                    yield from server.execute_insert(rect, data_id)

        def reader():
            failures = 0
            for _ in range(60):
                try:
                    yield from engine.search(Rect(0.3, 0.3, 0.5, 0.5))
                except OffloadError:
                    failures += 1
                yield sim.timeout(rng.uniform(0, 10e-6))
            return failures

        sim.process(churner())
        p = sim.process(reader())
        sim.run()
        # searches survived (restarts are fine, hard failures are not)
        assert p.value == 0
        # and the hostile conditions were actually exercised
        assert stats.torn_retries + stats.search_restarts > 0

    def test_offload_correct_after_total_rebuild(self):
        sim, net, sh, server, fm_server, conn, fm, stats = build_stack(
            n_items=200, max_entries=8
        )
        engine = OffloadEngine(sim, conn.client_end,
                               server.offload_descriptor(), server.costs,
                               stats)
        items = [(e.rect, e.data_id)
                 for node in server.tree.nodes.values() if node.is_leaf
                 for e in node.entries]

        def scenario():
            before = yield from engine.search(Rect(0, 0, 1, 1))
            for rect, data_id in items:
                yield from server.execute_delete(rect, data_id)
            empty = yield from engine.search(Rect(0, 0, 1, 1))
            for rect, data_id in items:
                yield from server.execute_insert(rect, data_id)
            after = yield from engine.search(Rect(0, 0, 1, 1))
            return len(before), len(empty), len(after)

        p = sim.process(scenario())
        sim.run()
        n_before, n_empty, n_after = p.value
        assert n_before == 200
        assert n_empty == 0
        assert n_after == 200


class TestReadRetryExhaustion:
    def test_offload_error_when_chunk_never_validates(self):
        """A node held in a write window forever exhausts the retry budget
        and surfaces as OffloadError rather than spinning."""
        sim, net, sh, server, fm_server, conn, fm, stats = build_stack()
        engine = OffloadEngine(sim, conn.client_end,
                               server.offload_descriptor(), server.costs,
                               stats, max_read_retries=3,
                               max_search_restarts=2)
        # Pin the root in a write window and never release it.
        server.tree.root.begin_write()

        def client():
            try:
                yield from engine.search(Rect(0, 0, 1, 1))
            except OffloadError:
                return "gave-up"
            return "completed"

        p = sim.process(client())
        sim.run()
        assert p.value == "gave-up"
        assert stats.torn_retries >= 3
