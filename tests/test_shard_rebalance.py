"""The elastic shard plane: controller units, end-to-end rebalancing
runs, and the two fingerprint-pinned chaos scenarios.

The end-to-end runs use a quadrant-concentrated fixed query set so one
shard starts hot and the controller has something real to do; they are
sized to stay in tier-1 (sub-second each).
"""

import random

import pytest

from repro.cluster.config import ExperimentConfig, RebalanceConfig
from repro.faults import run_scenario
from repro.rtree.geometry import Rect
from repro.shard.deploy import ShardedExperimentRunner
from repro.shard.rebalance import RebalanceController, RebalanceStats
from repro.shard.verify import verify_routed_results

#: Matches tests/test_chaos.py: same structure, ~4x faster.
FAST = dict(n_clients=2, requests_per_client=120, dataset_size=1000)

#: Aggressive-but-damped tuning the end-to-end tests run under.
TUNING = RebalanceConfig(interval=0.3e-3, split_ratio=1.5,
                         min_split_items=16, drain_s=0.1e-3)


def quadrant_queries(n=200, scale=0.03, seed=7):
    """Fixed query rects concentrated in the lower-left quadrant."""
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        cx, cy = rng.uniform(0.0, 0.5), rng.uniform(0.0, 0.5)
        out.append(Rect(max(cx - scale / 2, 0.0), max(cy - scale / 2, 0.0),
                        min(cx + scale / 2, 1.0), min(cy + scale / 2, 1.0)))
    return out


def skewed_config(rebalance=TUNING, **overrides):
    defaults = dict(
        scheme="fast-messaging-event",
        workload_kind="queries",
        queries=quadrant_queries(),
        n_clients=4,
        requests_per_client=150,
        dataset_size=800,
        max_entries=16,
        server_cores=1,
        n_shards=4,
        seed=0,
        rebalance=rebalance,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestMedianCut:
    def test_cuts_wider_axis_at_median(self):
        centers = [(0.0, 0.5), (0.2, 0.5), (0.8, 0.5), (1.0, 0.5)]
        index, axis, cut = RebalanceController._median_cut(3, centers)
        assert index == 3
        assert axis == "x"
        assert cut == pytest.approx(0.5)

    def test_falls_back_to_other_axis(self):
        # Every center shares x; only y admits a cut.
        centers = [(0.5, 0.1), (0.5, 0.2), (0.5, 0.8), (0.5, 0.9)]
        _index, axis, cut = RebalanceController._median_cut(0, centers)
        assert axis == "y"
        assert 0.2 < cut < 0.8

    def test_degenerate_median_uses_extent_midpoint(self):
        # Median pair ties at 0.9 but the extent still has a strict gap.
        centers = [(0.1, 0.0), (0.9, 0.0), (0.9, 0.0), (0.9, 0.0)]
        _index, axis, cut = RebalanceController._median_cut(0, centers)
        assert axis == "x"
        assert 0.1 < cut < 0.9

    def test_identical_centers_yield_none(self):
        centers = [(0.5, 0.5)] * 4
        assert RebalanceController._median_cut(0, centers) is None


class TestHalfMbrs:
    def test_exact_covers(self):
        items = [
            ((0.1, 0.1), Rect(0.05, 0.05, 0.15, 0.15)),
            ((0.2, 0.2), Rect(0.18, 0.18, 0.22, 0.22)),
            ((0.8, 0.8), Rect(0.75, 0.75, 0.85, 0.85)),
        ]
        low, high = RebalanceController._half_mbrs(items, "x", 0.5)
        assert (low.minx, low.maxx) == (0.05, 0.22)
        assert (high.minx, high.maxx) == (0.75, 0.85)

    def test_empty_half_is_none(self):
        items = [((0.1, 0.1), Rect(0.1, 0.1, 0.1, 0.1))]
        low, high = RebalanceController._half_mbrs(items, "y", 0.9)
        assert low is not None
        assert high is None


class TestStats:
    def test_snapshot_names_every_field(self):
        stats = RebalanceStats()
        snap = stats.snapshot()
        assert set(snap) == set(RebalanceStats.FIELDS)
        assert all(v == 0 for v in snap.values())
        stats.splits += 3
        assert stats.snapshot()["splits"] == 3


class TestEndToEnd:
    def test_skewed_run_splits_and_stays_exact(self):
        runner = ShardedExperimentRunner(skewed_config(),
                                         record_results=True)
        result = runner.run()
        extra = result.extra
        assert extra["rebalance_splits"] > 0
        assert extra["rebalance_migrations_completed"] > 0
        assert not runner.rebalancer.active_migrations
        assert extra["map_epoch"] > 0
        # The live map survived every revision structurally intact.
        runner.live_map.check_invariants()
        # Every recorded read matches the single-tree oracle, despite
        # queries racing splits, cut-overs, and drains.
        summary = verify_routed_results(runner)
        assert summary.ok, summary
        assert summary.checked == 600

    def test_straddling_queries_rescatter(self):
        """Queries in flight across an epoch cut re-scatter instead of
        returning partial results (deterministic at a fixed seed)."""
        runner = ShardedExperimentRunner(skewed_config(),
                                         record_results=True)
        result = runner.run()
        assert result.extra["epoch_rescatters"] > 0
        assert result.extra["rescattered_subqueries"] > 0
        summary = verify_routed_results(runner)
        assert summary.ok, summary

    def test_occupancy_tracks_migrations(self):
        """After migrations settle, the live map's counts agree with an
        exact per-shard leaf walk, and the plane actually moved items."""
        runner = ShardedExperimentRunner(skewed_config())
        result = runner.run()
        walk = runner.shard_occupancy()
        assert sum(walk) == runner.config.dataset_size
        assert walk != runner.initial_occupancy()
        assert runner.live_map.counts() == walk
        reported = [int(result.extra[f"shard{k}_items"]) for k in range(4)]
        assert reported == walk

    def test_rebalance_off_keeps_static_plane(self):
        runner = ShardedExperimentRunner(skewed_config(rebalance=None))
        result = runner.run()
        assert runner.rebalancer is None
        assert runner.live_map is None
        assert "rebalance_splits" not in result.extra
        assert runner.shard_occupancy() == runner.initial_occupancy()

    def test_disabled_config_behaves_as_none(self):
        off = RebalanceConfig(enabled=False)
        runner = ShardedExperimentRunner(skewed_config(rebalance=off))
        runner.run()
        assert runner.rebalancer is None

    def test_same_seed_replays_identically(self):
        first = ShardedExperimentRunner(skewed_config())
        a = first.run()
        second = ShardedExperimentRunner(skewed_config())
        b = second.run()
        assert a.extra == b.extra
        assert a.throughput_kops == b.throughput_kops
        assert first.live_map.epoch == second.live_map.epoch


@pytest.mark.parametrize("name,fingerprint", [
    ("rebalance-under-fault", "4da09f454ef412f4"),
    ("migration-racing-writes", "b4222c4c38b1bacc"),
])
class TestChaosScenarios:
    def test_green_and_pinned_at_fast_size(self, name, fingerprint):
        report = run_scenario(name, **FAST)
        assert report.ok, report.failures
        assert report.fingerprint() == fingerprint
