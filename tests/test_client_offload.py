"""Tests for the RDMA-offloading client: correctness, retries, restarts."""

import pytest

from repro.client import ClientStats, OffloadEngine, OffloadSession, Request
from repro.client.base import OP_INSERT, OP_SEARCH
from repro.client.fm_client import FmSession
from repro.hw import Host
from repro.net import IB_100G, Network
from repro.rtree import Rect
from repro.server import EVENT, FastMessagingServer, RTreeServer
from repro.sim import Simulator
from repro.transport import connect
from repro.workloads import uniform_dataset


def make_offload(n_items=1500, max_entries=16, cores=4, multi_issue=True):
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=cores)
    net.attach_server(server_host)
    items = uniform_dataset(n_items, seed=7)
    server = RTreeServer(sim, server_host, items, max_entries=max_entries)
    client_host = Host(sim, "client", IB_100G, cores=2)
    client_qp, _server_qp = connect(sim, net, client_host, server_host)
    stats = ClientStats()
    engine = OffloadEngine(
        sim,
        client_qp,
        server.offload_descriptor(),
        server.costs,
        stats,
        multi_issue=multi_issue,
    )
    return sim, net, server_host, server, engine, stats, items


@pytest.mark.parametrize("multi_issue", [False, True])
@pytest.mark.parametrize(
    "query",
    [
        Rect(0, 0, 1, 1),
        Rect(0.25, 0.25, 0.5, 0.5),
        Rect(0.9, 0.9, 0.90001, 0.90001),
    ],
)
def test_offload_search_matches_server_search(multi_issue, query):
    sim, net, server_host, server, engine, stats, items = make_offload(
        multi_issue=multi_issue
    )

    def client():
        matches = yield from engine.search(query)
        return matches

    p = sim.process(client())
    sim.run()
    expected = sorted(server.tree.search(query).data_ids)
    assert sorted(i for _r, i in p.value) == expected


def test_offload_consumes_zero_server_cpu():
    sim, net, server_host, server, engine, stats, items = make_offload()

    def client():
        for _ in range(20):
            yield from engine.search(Rect(0.1, 0.1, 0.4, 0.4))

    sim.process(client())
    sim.run()
    assert server_host.cpu.total_work_seconds == 0.0
    assert stats.offloaded_requests == 20


def test_multi_issue_is_faster_on_wide_queries():
    """The paper's Fig 8: multi-issue pipelines sibling fetches."""
    query = Rect(0.2, 0.2, 0.7, 0.7)  # wide: many children per level

    def timed(multi_issue):
        sim, net, sh, server, engine, stats, items = make_offload(
            multi_issue=multi_issue
        )

        def client():
            t0 = sim.now
            yield from engine.search(query)
            return sim.now - t0

        p = sim.process(client())
        sim.run()
        return p.value

    assert timed(True) < timed(False) * 0.7


def test_single_and_multi_issue_fetch_same_chunk_count():
    query = Rect(0.3, 0.3, 0.6, 0.6)
    counts = []
    for multi_issue in (False, True):
        sim, net, sh, server, engine, stats, items = make_offload(
            multi_issue=multi_issue
        )

        def client():
            yield from engine.search(query)

        sim.process(client())
        sim.run()
        counts.append(engine.chunks_fetched)
    assert counts[0] == counts[1]


def test_meta_is_validated_every_search():
    sim, net, sh, server, engine, stats, items = make_offload()

    def client():
        for _ in range(5):
            yield from engine.search(Rect(0.4, 0.4, 0.45, 0.45))

    sim.process(client())
    sim.run()
    # first search: bootstrap meta read; warm searches: one in-flight
    # validation read each
    assert engine.meta_reads >= 5
    assert engine.stale_root_detections == 0


def test_cold_start_does_single_meta_read():
    """Regression: the first multi-issue search used to do a blocking
    bootstrap meta read AND immediately issue a second concurrent
    fetch_meta — paying an extra RTT and double-counting meta_reads."""
    sim, net, sh, server, engine, stats, items = make_offload(
        multi_issue=True
    )

    def client():
        yield from engine.search(Rect(0.4, 0.4, 0.45, 0.45))

    sim.process(client())
    sim.run()
    assert engine.meta_reads == 1

    # The warm path still validates concurrently: exactly one more read.
    def client2():
        yield from engine.search(Rect(0.4, 0.4, 0.45, 0.45))

    sim.process(client2())
    sim.run()
    assert engine.meta_reads == 2


def test_torn_read_is_retried_during_concurrent_insert():
    sim, net, server_host, server, engine, stats, items = make_offload()

    def writer():
        # Stream inserts so write windows stay open a lot of the time.
        for i in range(200):
            yield from server.execute_insert(
                Rect(0.5, 0.5, 0.5001, 0.5001), 10_000_000 + i
            )

    def reader():
        for _ in range(50):
            yield from engine.search(Rect(0.49, 0.49, 0.52, 0.52))

    sim.process(writer())
    p = sim.process(reader())
    sim.run()
    assert p.value is None  # reader generator returns None at the end
    assert stats.torn_retries > 0


def test_root_split_triggers_meta_refresh_and_restart():
    sim, net, server_host, server, engine, stats, items = make_offload(
        n_items=15, max_entries=4
    )
    query = Rect(0, 0, 1, 1)
    old_root = server.tree.root.chunk_id
    old_height = server.tree.height

    def client():
        # Prime the engine's root cache.
        first = yield from engine.search(query)
        # Grow the tree until the root splits (height increases).
        i = 0
        while server.tree.height == old_height:
            yield from server.execute_insert(
                Rect(0.001 * i, 0.001 * i, 0.001 * i + 0.0001,
                     0.001 * i + 0.0001),
                20_000_000 + i,
            )
            i += 1
        # The cached root is now stale; the search must still be correct.
        second = yield from engine.search(query)
        return len(first), len(second)

    p = sim.process(client())
    sim.run()
    n_first, n_second = p.value
    assert server.tree.root.chunk_id != old_root
    assert n_second == server.tree.size
    assert engine.stale_root_detections >= 1
    assert stats.search_restarts >= 1


def test_offload_session_routes_writes_to_fast_messaging():
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=4)
    net.attach_server(server_host)
    items = uniform_dataset(500, seed=9)
    server = RTreeServer(sim, server_host, items, max_entries=16)
    fm_server = FastMessagingServer(sim, server, net, mode=EVENT)
    client_host = Host(sim, "client", IB_100G, cores=2)
    conn = fm_server.open_connection(client_host)
    stats = ClientStats()
    fm = FmSession(sim, conn, 0, stats)
    engine = OffloadEngine(
        sim, conn.client_end, server.offload_descriptor(), server.costs,
        stats,
    )
    session = OffloadSession(engine, fm, stats)
    rect = Rect(0.8, 0.8, 0.80001, 0.80001)

    def client():
        yield from session.execute(Request(OP_INSERT, rect, data_id=424242))
        matches = yield from session.execute(Request(OP_SEARCH, rect))
        return matches

    p = sim.process(client())
    sim.run()
    assert 424242 in [i for _r, i in p.value]
    # The insert went through the server; the search did not.
    assert server.inserts_served == 1
    assert server.searches_served == 0
    assert stats.offloaded_requests == 1
    assert stats.fast_messaging_requests == 1
