"""Tests for the STR cluster partitioner and shard map."""

import random

import pytest

from repro.rtree.geometry import Rect
from repro.shard.partition import (
    ShardInfo, ShardMap, TileEntry, partition_str, tile_contains,
)


def grid_items(n):
    """n x n grid of small rects with distinct centers."""
    items = []
    data_id = 0
    for i in range(n):
        for j in range(n):
            x, y = i / n, j / n
            items.append((Rect(x, y, x + 0.4 / n, y + 0.4 / n), data_id))
            data_id += 1
    return items


def random_items(n, seed=0):
    rng = random.Random(seed)
    items = []
    for data_id in range(n):
        x, y = rng.random(), rng.random()
        w, h = rng.random() * 0.02, rng.random() * 0.02
        items.append((Rect(x, y, x + w, y + h), data_id))
    return items


class TestPartitionStr:
    def test_every_item_assigned_exactly_once(self):
        items = random_items(300)
        part = partition_str(items, 4)
        assigned = sorted(d for bucket in part.assignments
                          for _r, d in bucket)
        assert assigned == sorted(d for _r, d in items)

    def test_assignment_matches_tile_ownership(self):
        """The authoritative rule: an item lives in the shard whose tile
        contains its center — delete routing relies on this."""
        for n_shards in (2, 3, 4, 6, 8):
            part = partition_str(random_items(200), n_shards)
            for shard_id, bucket in enumerate(part.assignments):
                for rect, _d in bucket:
                    assert part.shard_map.owner_of(rect) == shard_id

    def test_tie_on_cut_line_is_consistent(self):
        """Items exactly on a cut coordinate still agree with owner_of."""
        # Two x-columns of identical centers forces cuts through the gap
        # midpoints; a third column sits exactly on a plausible cut.
        items = []
        for i, x in enumerate((0.25, 0.5, 0.75)):
            for j in range(10):
                r = Rect(x - 0.01, j / 10, x + 0.01, j / 10 + 0.02)
                items.append((r, i * 10 + j))
        part = partition_str(items, 4)
        for shard_id, bucket in enumerate(part.assignments):
            for rect, _d in bucket:
                assert part.shard_map.owner_of(rect) == shard_id

    def test_counts_match_buckets(self):
        part = partition_str(random_items(100), 5)
        for info, bucket in zip(part.shard_map, part.assignments):
            assert info.count == len(bucket)

    def test_roughly_balanced(self):
        part = partition_str(random_items(400), 4)
        counts = [info.count for info in part.shard_map]
        assert sum(counts) == 400
        # STR with distinct random centers splits near-evenly.
        assert min(counts) >= 50

    def test_mbr_covers_contents(self):
        part = partition_str(random_items(150), 6)
        for info, bucket in zip(part.shard_map, part.assignments):
            for rect, _d in bucket:
                assert info.mbr.minx <= rect.minx
                assert info.mbr.miny <= rect.miny
                assert info.mbr.maxx >= rect.maxx
                assert info.mbr.maxy >= rect.maxy

    def test_single_shard(self):
        items = random_items(20)
        part = partition_str(items, 1)
        assert part.n_shards == 1
        assert part.shard_map[0].count == 20
        assert part.assignments[0] == tuple(items)
        assert part.shard_map[0].tile.minx == float("-inf")
        assert part.shard_map[0].tile.maxx == float("inf")

    def test_more_shards_than_items(self):
        items = random_items(3)
        part = partition_str(items, 8)
        assigned = sorted(d for bucket in part.assignments
                          for _r, d in bucket)
        assert assigned == [0, 1, 2]
        nonempty = part.shard_map.nonempty_shards()
        assert len(nonempty) <= 3
        for info in part.shard_map:
            if info.count == 0:
                assert info.mbr is None

    def test_empty_dataset_single_shard(self):
        part = partition_str([], 1)
        assert part.shard_map[0].mbr is None
        assert part.shard_map.nonempty_shards() == []

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            partition_str(random_items(5), 0)


class TestShardMap:
    def test_owner_is_total_over_the_plane(self):
        part = partition_str(grid_items(5), 4)
        rng = random.Random(1)
        for _ in range(200):
            # Points far outside the dataset domain must still route.
            x = rng.uniform(-50.0, 50.0)
            y = rng.uniform(-50.0, 50.0)
            owner = part.shard_map.owner_of(Rect(x, y, x, y))
            assert 0 <= owner < part.n_shards

    def test_shards_for_is_exact_superset(self):
        """Every item's own rect must scatter to the shard holding it."""
        items = random_items(120)
        part = partition_str(items, 4)
        holder = {d: k for k, bucket in enumerate(part.assignments)
                  for _r, d in bucket}
        for rect, data_id in items:
            assert holder[data_id] in part.shard_map.shards_for(rect)

    def test_shards_for_prunes_disjoint_queries(self):
        part = partition_str(grid_items(6), 4)
        faraway = Rect(10.0, 10.0, 11.0, 11.0)
        assert part.shard_map.shards_for(faraway) == []

    def test_note_insert_grows_mbr_and_count(self):
        part = partition_str(grid_items(4), 4)
        shard_map = part.shard_map
        outlier = Rect(0.0, 10.0, 0.1, 10.1)
        owner = shard_map.owner_of(outlier)
        before = shard_map[owner].count
        shard_map.note_insert(owner, outlier)
        assert shard_map[owner].count == before + 1
        assert shard_map[owner].mbr.maxy >= 10.1
        # The widened MBR now scatters reads for the outlier's region.
        assert owner in shard_map.shards_for(outlier)

    def test_rejects_empty_map(self):
        with pytest.raises(ValueError):
            ShardMap([])

    def test_rejects_sparse_ids(self):
        tile = Rect(float("-inf"), float("-inf"),
                    float("inf"), float("inf"))
        with pytest.raises(ValueError):
            ShardMap([ShardInfo(1, tile, None, 0)])

    def test_describe_mentions_every_shard(self):
        part = partition_str(random_items(50), 3)
        lines = part.shard_map.describe()
        assert len(lines) == 3
        assert "shard 0" in lines[0]


class TestEpochRevisions:
    """Split/merge/reassign keep the plane disjoint + covering and the
    epoch strictly increasing — the invariants the epoch-aware router
    and the rebalance controller both lean on."""

    def test_static_map_stays_at_epoch_zero(self):
        part = partition_str(random_items(100), 4)
        shard_map = part.shard_map
        shard_map.shards_for(Rect(0.1, 0.1, 0.2, 0.2))
        shard_map.owner_of(Rect(0.5, 0.5, 0.5, 0.5))
        assert shard_map.epoch == 0
        shard_map.check_invariants()

    def test_split_bumps_epoch_and_keeps_coverage(self):
        shard_map = partition_str(random_items(100), 4).shard_map
        index, entry = shard_map.owned_tiles(0)[0]
        cx = 0.0 if entry.rect.minx == float("-inf") else entry.rect.minx
        low, high = shard_map.split_tile(index, "x", cx + 0.1)
        assert shard_map.epoch == 1
        assert shard_map.tiles[low].owner == shard_map.tiles[high].owner == 0
        shard_map.check_invariants()

    def test_split_rejects_cut_outside_tile(self):
        shard_map = partition_str(random_items(50), 2).shard_map
        tile = shard_map.tiles[0].rect
        with pytest.raises(ValueError):
            shard_map.split_tile(0, "x", tile.maxx + 1.0)
        with pytest.raises(ValueError):
            shard_map.split_tile(0, "z", 0.5)

    def test_split_then_merge_restores_the_tile(self):
        shard_map = partition_str(random_items(100), 4).shard_map
        index, entry = shard_map.owned_tiles(1)[0]
        before = entry.rect
        low, high = shard_map.split_tile(index, "y", 0.5)
        kept = shard_map.merge_tiles(low, high)
        assert shard_map.tiles[kept].rect == before
        assert shard_map.epoch == 2
        assert len(shard_map.tiles) == 4
        shard_map.check_invariants()

    def test_merge_rejects_non_rectangular_union(self):
        shard_map = partition_str(random_items(100), 4).shard_map
        index, _entry = shard_map.owned_tiles(0)[0]
        low, high = shard_map.split_tile(index, "x", 0.1)
        _ = shard_map.split_tile(low, "y", 0.2)
        # low is now a quarter of the original tile; high the full-height
        # other half — their union is L-shaped.
        with pytest.raises(ValueError):
            shard_map.merge_tiles(low, high)

    def test_merge_rejects_different_owners(self):
        shard_map = partition_str(random_items(100), 4).shard_map
        with pytest.raises(ValueError):
            shard_map.merge_tiles(0, 1)

    def test_reassign_moves_ownership_and_counts(self):
        shard_map = partition_str(random_items(200), 4).shard_map
        index, entry = shard_map.owned_tiles(2)[0]
        moved = shard_map[2].count
        old = shard_map.reassign_tile(index, 0, moved_count=moved,
                                      moved_mbr=entry.mbr)
        assert old == 2
        assert shard_map.tiles[index].owner == 0
        assert shard_map[2].count == 0
        assert shard_map[0].count == moved + 50  # its own ~50 items
        # Center routing follows the new owner immediately.
        cx, cy = entry.mbr.center()
        assert shard_map.owner_of(Rect(cx, cy, cx, cy)) == 0
        shard_map.check_invariants()

    def test_reassign_rejects_bad_targets(self):
        shard_map = partition_str(random_items(50), 2).shard_map
        with pytest.raises(ValueError):
            shard_map.reassign_tile(0, 9)
        with pytest.raises(ValueError):
            shard_map.reassign_tile(0, shard_map.tiles[0].owner)

    def test_random_revision_sequences_keep_invariants(self):
        """Any split/merge sequence leaves the tiles disjoint and
        plane-covering (probe grid over every cut, on-cut points
        included)."""
        rng = random.Random(42)
        shard_map = partition_str(random_items(150, seed=3), 4).shard_map
        epoch = shard_map.epoch
        for _step in range(40):
            tiles = shard_map.tiles
            index = rng.randrange(len(tiles))
            rect = tiles[index].rect
            axis = rng.choice("xy")
            lo = rect.minx if axis == "x" else rect.miny
            hi = rect.maxx if axis == "x" else rect.maxy
            lo = max(lo, -2.0)
            hi = min(hi, 3.0)
            if hi - lo < 1e-6:
                continue
            cut = lo + rng.random() * (hi - lo)
            try:
                shard_map.split_tile(index, axis, cut)
            except ValueError:
                continue
            assert shard_map.epoch > epoch
            epoch = shard_map.epoch
            shard_map.check_invariants()

    def test_copy_is_independent(self):
        shard_map = partition_str(random_items(80), 4).shard_map
        clone = shard_map.copy()
        index, _entry = shard_map.owned_tiles(0)[0]
        shard_map.split_tile(index, "x", 0.01)
        assert clone.epoch == 0
        assert len(clone.tiles) == 4
        clone.check_invariants()

    def test_overlapping_tiles_fail_invariants(self):
        inf = float("inf")
        tile = Rect(-inf, -inf, inf, inf)
        overlapping = [
            TileEntry(Rect(-inf, -inf, 0.6, inf), 0),
            TileEntry(Rect(0.4, -inf, inf, inf), 1),
        ]
        shard_map = ShardMap(
            [ShardInfo(0, tile, None, 0), ShardInfo(1, tile, None, 0)],
            tiles=overlapping,
        )
        with pytest.raises(ValueError):
            shard_map.check_invariants()


class TestReadTargets:
    """Tile-granular read scatter: exact, pruned, stray-aware."""

    def test_matches_shards_for_on_static_plane(self):
        items = random_items(200)
        part = partition_str(items, 4)
        rng = random.Random(9)
        for _ in range(100):
            x, y = rng.random(), rng.random()
            q = Rect(x, y, min(x + 0.1, 1.0), min(y + 0.1, 1.0))
            assert (part.shard_map.read_targets(q)
                    == sorted(part.shard_map.shards_for(q)))

    def test_exact_superset_after_reassign(self):
        """After a tile hand-off, every item's own rect must still reach
        the shard that *holds* it — destination via the travelling tile
        MBR, source via its stray cover until cleanup rebuilds."""
        items = random_items(200)
        part = partition_str(items, 4)
        shard_map = part.shard_map
        index, _entry = shard_map.owned_tiles(3)[0]
        shard_map.reassign_tile(index, 0)
        # Items remain physically on shard 3 (no migration ran); the
        # stray cover must keep shard 3 in the scatter set.
        for rect, data_id in part.assignments[3]:
            assert 3 in shard_map.read_targets(rect), data_id
        # And the new owner is targeted too (it may hold racing writes).
        assert shard_map.stray_mbr(3) is not None

    def test_prunes_empty_tiles(self):
        items = [(Rect(0.1 + i * 0.01, 0.1, 0.11 + i * 0.01, 0.11), i)
                 for i in range(64)]
        part = partition_str(items, 4)
        # All items sit in a tight cluster: a faraway query hits nothing.
        assert part.shard_map.read_targets(Rect(5.0, 5.0, 6.0, 6.0)) == []

    def test_single_shard_routes_everything(self):
        part = partition_str(random_items(30), 1)
        shard_map = part.shard_map
        assert shard_map.read_targets(Rect(0.0, 0.0, 1.0, 1.0)) == [0]
        assert shard_map.owner_of(Rect(-100.0, 3.0, -99.0, 4.0)) == 0

    def test_infinite_tile_edges_accept_everything(self):
        inf = float("inf")
        tile = Rect(-inf, -inf, inf, inf)
        assert tile_contains(tile, -1e300, 1e300)
        assert tile_contains(tile, 0.0, 0.0)

    def test_rebuild_shard_summary_recomputes_exactly(self):
        items = random_items(120)
        part = partition_str(items, 4)
        shard_map = part.shard_map
        index, entry = shard_map.owned_tiles(1)[0]
        shard_map.reassign_tile(index, 2)
        # Cleanup done: shard 1 holds nothing now; shard 2 holds both
        # bucket 1 and bucket 2.
        shard_map.rebuild_shard_summary(1, [])
        merged = list(part.assignments[2]) + list(part.assignments[1])
        shard_map.rebuild_shard_summary(2, merged)
        assert shard_map.stray_mbr(1) is None
        assert shard_map[1].count == 0
        assert shard_map[1].mbr is None
        assert shard_map[2].count == len(merged)
        # Scatter sets are tight again: shard 1 never targeted.
        for rect, _d in merged:
            targets = shard_map.read_targets(rect)
            assert 1 not in targets
            assert 2 in targets

    def test_note_insert_grows_tile_cover(self):
        part = partition_str(random_items(100), 4)
        shard_map = part.shard_map
        outlier = Rect(0.0, 10.0, 0.1, 10.1)
        owner = shard_map.owner_of(outlier)
        shard_map.note_insert(owner, outlier)
        assert owner in shard_map.read_targets(outlier)

    def test_raced_write_lands_in_stray_cover(self):
        """An insert acked by a shard that no longer owns the center's
        tile (the write raced a cut-over) must still be readable."""
        part = partition_str(random_items(100), 4)
        shard_map = part.shard_map
        index, entry = shard_map.owned_tiles(0)[0]
        shard_map.reassign_tile(index, 1)
        mbr = entry.mbr
        cx, cy = mbr.center()
        raced = Rect(cx, cy, cx, cy)
        shard_map.note_insert(0, raced)  # shard 0 applied it anyway
        assert 0 in shard_map.read_targets(raced)
