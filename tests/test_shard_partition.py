"""Tests for the STR cluster partitioner and shard map."""

import random

import pytest

from repro.rtree.geometry import Rect
from repro.shard.partition import ShardInfo, ShardMap, partition_str


def grid_items(n):
    """n x n grid of small rects with distinct centers."""
    items = []
    data_id = 0
    for i in range(n):
        for j in range(n):
            x, y = i / n, j / n
            items.append((Rect(x, y, x + 0.4 / n, y + 0.4 / n), data_id))
            data_id += 1
    return items


def random_items(n, seed=0):
    rng = random.Random(seed)
    items = []
    for data_id in range(n):
        x, y = rng.random(), rng.random()
        w, h = rng.random() * 0.02, rng.random() * 0.02
        items.append((Rect(x, y, x + w, y + h), data_id))
    return items


class TestPartitionStr:
    def test_every_item_assigned_exactly_once(self):
        items = random_items(300)
        part = partition_str(items, 4)
        assigned = sorted(d for bucket in part.assignments
                          for _r, d in bucket)
        assert assigned == sorted(d for _r, d in items)

    def test_assignment_matches_tile_ownership(self):
        """The authoritative rule: an item lives in the shard whose tile
        contains its center — delete routing relies on this."""
        for n_shards in (2, 3, 4, 6, 8):
            part = partition_str(random_items(200), n_shards)
            for shard_id, bucket in enumerate(part.assignments):
                for rect, _d in bucket:
                    assert part.shard_map.owner_of(rect) == shard_id

    def test_tie_on_cut_line_is_consistent(self):
        """Items exactly on a cut coordinate still agree with owner_of."""
        # Two x-columns of identical centers forces cuts through the gap
        # midpoints; a third column sits exactly on a plausible cut.
        items = []
        for i, x in enumerate((0.25, 0.5, 0.75)):
            for j in range(10):
                r = Rect(x - 0.01, j / 10, x + 0.01, j / 10 + 0.02)
                items.append((r, i * 10 + j))
        part = partition_str(items, 4)
        for shard_id, bucket in enumerate(part.assignments):
            for rect, _d in bucket:
                assert part.shard_map.owner_of(rect) == shard_id

    def test_counts_match_buckets(self):
        part = partition_str(random_items(100), 5)
        for info, bucket in zip(part.shard_map, part.assignments):
            assert info.count == len(bucket)

    def test_roughly_balanced(self):
        part = partition_str(random_items(400), 4)
        counts = [info.count for info in part.shard_map]
        assert sum(counts) == 400
        # STR with distinct random centers splits near-evenly.
        assert min(counts) >= 50

    def test_mbr_covers_contents(self):
        part = partition_str(random_items(150), 6)
        for info, bucket in zip(part.shard_map, part.assignments):
            for rect, _d in bucket:
                assert info.mbr.minx <= rect.minx
                assert info.mbr.miny <= rect.miny
                assert info.mbr.maxx >= rect.maxx
                assert info.mbr.maxy >= rect.maxy

    def test_single_shard(self):
        items = random_items(20)
        part = partition_str(items, 1)
        assert part.n_shards == 1
        assert part.shard_map[0].count == 20
        assert part.assignments[0] == tuple(items)
        assert part.shard_map[0].tile.minx == float("-inf")
        assert part.shard_map[0].tile.maxx == float("inf")

    def test_more_shards_than_items(self):
        items = random_items(3)
        part = partition_str(items, 8)
        assigned = sorted(d for bucket in part.assignments
                          for _r, d in bucket)
        assert assigned == [0, 1, 2]
        nonempty = part.shard_map.nonempty_shards()
        assert len(nonempty) <= 3
        for info in part.shard_map:
            if info.count == 0:
                assert info.mbr is None

    def test_empty_dataset_single_shard(self):
        part = partition_str([], 1)
        assert part.shard_map[0].mbr is None
        assert part.shard_map.nonempty_shards() == []

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            partition_str(random_items(5), 0)


class TestShardMap:
    def test_owner_is_total_over_the_plane(self):
        part = partition_str(grid_items(5), 4)
        rng = random.Random(1)
        for _ in range(200):
            # Points far outside the dataset domain must still route.
            x = rng.uniform(-50.0, 50.0)
            y = rng.uniform(-50.0, 50.0)
            owner = part.shard_map.owner_of(Rect(x, y, x, y))
            assert 0 <= owner < part.n_shards

    def test_shards_for_is_exact_superset(self):
        """Every item's own rect must scatter to the shard holding it."""
        items = random_items(120)
        part = partition_str(items, 4)
        holder = {d: k for k, bucket in enumerate(part.assignments)
                  for _r, d in bucket}
        for rect, data_id in items:
            assert holder[data_id] in part.shard_map.shards_for(rect)

    def test_shards_for_prunes_disjoint_queries(self):
        part = partition_str(grid_items(6), 4)
        faraway = Rect(10.0, 10.0, 11.0, 11.0)
        assert part.shard_map.shards_for(faraway) == []

    def test_note_insert_grows_mbr_and_count(self):
        part = partition_str(grid_items(4), 4)
        shard_map = part.shard_map
        outlier = Rect(0.0, 10.0, 0.1, 10.1)
        owner = shard_map.owner_of(outlier)
        before = shard_map[owner].count
        shard_map.note_insert(owner, outlier)
        assert shard_map[owner].count == before + 1
        assert shard_map[owner].mbr.maxy >= 10.1
        # The widened MBR now scatters reads for the outlier's region.
        assert owner in shard_map.shards_for(outlier)

    def test_rejects_empty_map(self):
        with pytest.raises(ValueError):
            ShardMap([])

    def test_rejects_sparse_ids(self):
        tile = Rect(float("-inf"), float("-inf"),
                    float("inf"), float("inf"))
        with pytest.raises(ValueError):
            ShardMap([ShardInfo(1, tile, None, 0)])

    def test_describe_mentions_every_shard(self):
        part = partition_str(random_items(50), 3)
        lines = part.shard_map.describe()
        assert len(lines) == 3
        assert "shard 0" in lines[0]
