"""R*-tree correctness: inserts, splits, deletes, invariants, oracle."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtree import RStarTree, Rect


def random_rect(rng, space=1.0, max_edge=0.05):
    w = rng.uniform(0, max_edge)
    h = rng.uniform(0, max_edge)
    x = rng.uniform(0, space - w)
    y = rng.uniform(0, space - h)
    return Rect(x, y, x + w, y + h)


def build_tree(n, max_entries=8, seed=0):
    rng = random.Random(seed)
    tree = RStarTree(max_entries=max_entries)
    rects = []
    for i in range(n):
        r = random_rect(rng)
        tree.insert(r, i)
        rects.append(r)
    return tree, rects


def brute_force(rects, query):
    return sorted(i for i, r in enumerate(rects) if r.intersects(query))


class TestBasics:
    def test_empty_tree_search(self):
        tree = RStarTree(max_entries=8)
        assert tree.search(Rect(0, 0, 1, 1)).data_ids == []
        assert tree.size == 0
        assert tree.height == 1

    def test_single_insert_and_search(self):
        tree = RStarTree(max_entries=8)
        tree.insert(Rect(0.1, 0.1, 0.2, 0.2), 42)
        hit = tree.search(Rect(0, 0, 1, 1))
        assert hit.data_ids == [42]
        miss = tree.search(Rect(0.5, 0.5, 0.6, 0.6))
        assert miss.data_ids == []

    def test_size_tracks_inserts(self):
        tree, _ = build_tree(100)
        assert tree.size == 100

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            RStarTree(max_entries=3)

    def test_min_entries_override_validation(self):
        with pytest.raises(ValueError):
            RStarTree(max_entries=8, min_entries_override=5)
        with pytest.raises(ValueError):
            RStarTree(max_entries=8, min_entries_override=1)

    def test_duplicate_rects_allowed(self):
        tree = RStarTree(max_entries=8)
        r = Rect(0.1, 0.1, 0.2, 0.2)
        for i in range(20):
            tree.insert(r, i)
        assert sorted(tree.search(r).data_ids) == list(range(20))


class TestGrowth:
    def test_root_split_increases_height(self):
        tree = RStarTree(max_entries=4)
        rng = random.Random(1)
        for i in range(5):
            tree.insert(random_rect(rng), i)
        assert tree.height == 2
        tree.validate()

    def test_height_is_logarithmic(self):
        tree, _ = build_tree(1000, max_entries=16)
        # 16-ary tree over 1000 items: height 3-4
        assert 2 <= tree.height <= 4

    def test_invariants_during_growth(self):
        tree = RStarTree(max_entries=6)
        rng = random.Random(2)
        rects = []
        for i in range(300):
            r = random_rect(rng)
            tree.insert(r, i)
            rects.append(r)
            if i % 50 == 49:
                tree.validate()
        tree.validate()

    def test_all_leaves_same_level(self):
        tree, _ = build_tree(500, max_entries=8, seed=3)

        def leaf_depths(node, depth):
            if node.is_leaf:
                yield depth
            else:
                for e in node.entries:
                    yield from leaf_depths(e.child, depth + 1)

        depths = set(leaf_depths(tree.root, 0))
        assert len(depths) == 1

    def test_splits_are_counted(self):
        tree = RStarTree(max_entries=4)
        rng = random.Random(4)
        total_splits = 0
        for i in range(100):
            result = tree.insert(random_rect(rng), i)
            total_splits += result.splits
        assert total_splits > 0

    def test_forced_reinsert_happens(self):
        tree = RStarTree(max_entries=8)
        rng = random.Random(5)
        total_reinserted = 0
        for i in range(500):
            result = tree.insert(random_rect(rng), i)
            total_reinserted += result.reinserted_entries
        assert total_reinserted > 0


class TestSearchOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("max_entries", [4, 8, 32])
    def test_matches_brute_force(self, seed, max_entries):
        tree, rects = build_tree(400, max_entries=max_entries, seed=seed)
        rng = random.Random(seed + 100)
        for _ in range(50):
            query = random_rect(rng, max_edge=0.3)
            assert sorted(tree.search(query).data_ids) == brute_force(
                rects, query
            )

    def test_full_space_query_returns_everything(self):
        tree, rects = build_tree(200)
        hit = tree.search(Rect(0, 0, 1, 1))
        assert sorted(hit.data_ids) == list(range(200))

    def test_point_query(self):
        tree, rects = build_tree(300, seed=7)
        rng = random.Random(8)
        for _ in range(30):
            x, y = rng.random(), rng.random()
            query = Rect.point(x, y)
            assert sorted(tree.search(query).data_ids) == brute_force(
                rects, query
            )

    def test_traversal_accounting(self):
        tree, _ = build_tree(500, max_entries=8)
        result = tree.search(Rect(0, 0, 1, 1))
        # full-space query visits every node
        assert result.nodes_visited == tree.node_count
        assert result.leaf_nodes_visited > 0
        assert len(result.visited_chunks) == result.nodes_visited

    def test_small_query_visits_few_nodes(self):
        tree, _ = build_tree(2000, max_entries=32, seed=9)
        result = tree.search(Rect(0.5, 0.5, 0.5001, 0.5001))
        assert result.nodes_visited < tree.node_count / 4


class TestDelete:
    def test_delete_existing(self):
        tree = RStarTree(max_entries=8)
        r = Rect(0.1, 0.1, 0.2, 0.2)
        tree.insert(r, 1)
        result = tree.delete(r, 1)
        assert result.ok
        assert tree.size == 0
        assert tree.search(Rect(0, 0, 1, 1)).data_ids == []

    def test_delete_missing_returns_not_ok(self):
        tree = RStarTree(max_entries=8)
        tree.insert(Rect(0.1, 0.1, 0.2, 0.2), 1)
        result = tree.delete(Rect(0.3, 0.3, 0.4, 0.4), 99)
        assert not result.ok
        assert tree.size == 1

    def test_delete_requires_matching_rect(self):
        tree = RStarTree(max_entries=8)
        tree.insert(Rect(0.1, 0.1, 0.2, 0.2), 1)
        assert not tree.delete(Rect(0.1, 0.1, 0.2, 0.21), 1).ok

    def test_delete_half_then_search(self):
        tree, rects = build_tree(300, max_entries=8, seed=11)
        for i in range(0, 300, 2):
            assert tree.delete(rects[i], i).ok
        tree.validate()
        remaining = brute_force(
            [r for i, r in enumerate(rects) if i % 2 == 1],
            Rect(0, 0, 1, 1),
        )
        got = sorted(tree.search(Rect(0, 0, 1, 1)).data_ids)
        assert got == sorted(i for i in range(300) if i % 2 == 1)
        assert len(got) == len(remaining)

    def test_delete_everything_collapses_tree(self):
        tree, rects = build_tree(200, max_entries=8, seed=12)
        for i, r in enumerate(rects):
            assert tree.delete(r, i).ok
        assert tree.size == 0
        assert tree.height == 1
        assert tree.node_count == 1

    def test_tree_valid_under_churn(self):
        tree = RStarTree(max_entries=6)
        rng = random.Random(13)
        live = {}
        next_id = 0
        for step in range(800):
            if live and rng.random() < 0.4:
                data_id = rng.choice(list(live))
                assert tree.delete(live.pop(data_id), data_id).ok
            else:
                r = random_rect(rng)
                tree.insert(r, next_id)
                live[next_id] = r
                next_id += 1
            if step % 100 == 99:
                tree.validate()
        tree.validate()
        got = sorted(tree.search(Rect(0, 0, 1, 1)).data_ids)
        assert got == sorted(live)


class TestMutationAccounting:
    def test_insert_reports_mutated_nodes(self):
        tree = RStarTree(max_entries=8)
        result = tree.insert(Rect(0.1, 0.1, 0.2, 0.2), 1)
        assert result.mutated_nodes
        assert tree.root in result.mutated_nodes

    def test_delete_reports_mutated_nodes(self):
        tree = RStarTree(max_entries=8)
        r = Rect(0.1, 0.1, 0.2, 0.2)
        tree.insert(r, 1)
        result = tree.delete(r, 1)
        assert result.mutated_nodes

    def test_chunk_ids_unique(self):
        tree, _ = build_tree(500, max_entries=8)
        ids = list(tree.nodes)
        assert len(ids) == len(set(ids))
        for cid, node in tree.nodes.items():
            assert node.chunk_id == cid


@st.composite
def rect_list(draw, min_size=1, max_size=120):
    n = draw(st.integers(min_size, max_size))
    rects = []
    for _ in range(n):
        x = draw(st.floats(0, 0.95, allow_nan=False))
        y = draw(st.floats(0, 0.95, allow_nan=False))
        w = draw(st.floats(0, 0.05, allow_nan=False))
        h = draw(st.floats(0, 0.05, allow_nan=False))
        rects.append(Rect(x, y, x + w, y + h))
    return rects


class TestHypothesis:
    @settings(max_examples=40, deadline=None)
    @given(rect_list(), st.integers(0, 2**31))
    def test_search_equals_brute_force(self, rects, qseed):
        tree = RStarTree(max_entries=5)
        for i, r in enumerate(rects):
            tree.insert(r, i)
        tree.validate()
        rng = random.Random(qseed)
        query = random_rect(rng, max_edge=0.5)
        assert sorted(tree.search(query).data_ids) == brute_force(
            rects, query
        )

    @settings(max_examples=25, deadline=None)
    @given(rect_list(min_size=5, max_size=60), st.data())
    def test_insert_delete_round_trip(self, rects, data):
        tree = RStarTree(max_entries=4)
        for i, r in enumerate(rects):
            tree.insert(r, i)
        to_delete = data.draw(
            st.sets(st.integers(0, len(rects) - 1),
                    max_size=len(rects))
        )
        for i in sorted(to_delete):
            assert tree.delete(rects[i], i).ok
        tree.validate()
        expected = sorted(set(range(len(rects))) - to_delete)
        assert sorted(tree.search(Rect(0, 0, 2, 2)).data_ids) == expected
