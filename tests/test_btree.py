"""B+tree correctness: puts, gets, scans, deletes, bulk load, invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.btree import BPlusTree


def build(n, capacity=8, seed=0):
    rng = random.Random(seed)
    keys = rng.sample(range(n * 10), n)
    tree = BPlusTree(capacity=capacity)
    for k in keys:
        tree.put(k, k * 2)
    return tree, sorted(keys)


class TestBasics:
    def test_empty(self):
        tree = BPlusTree(capacity=4)
        assert tree.size == 0
        assert tree.get(5).items == []
        assert tree.height == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(capacity=3)

    def test_put_get(self):
        tree = BPlusTree(capacity=4)
        tree.put(10, 100)
        assert tree.get(10).items == [(10, 100)]
        assert tree.get(11).items == []

    def test_overwrite_keeps_size(self):
        tree = BPlusTree(capacity=4)
        tree.put(1, 10)
        tree.put(1, 20)
        assert tree.size == 1
        assert tree.get(1).items == [(1, 20)]

    def test_split_grows_height(self):
        tree = BPlusTree(capacity=4)
        for k in range(10):
            tree.put(k, k)
        assert tree.height >= 2
        tree.validate()

    def test_many_inserts_valid(self):
        tree, keys = build(2000, capacity=8, seed=1)
        tree.validate()
        assert tree.size == 2000
        for k in random.Random(2).sample(keys, 100):
            assert tree.get(k).items == [(k, k * 2)]

    def test_get_missing_between_keys(self):
        tree, keys = build(500, capacity=8, seed=3)
        missing = set(range(5000)) - set(keys)
        for k in list(missing)[:50]:
            assert tree.get(k).items == []

    def test_visited_chunks_recorded(self):
        tree, keys = build(1000, capacity=8, seed=4)
        result = tree.get(keys[0])
        assert result.nodes_visited == tree.height
        assert len(result.visited_chunks) == result.nodes_visited


class TestRangeScan:
    def test_full_scan(self):
        tree, keys = build(300, capacity=8, seed=5)
        result = tree.range_scan(min(keys), max(keys))
        assert [k for k, _v in result.items] == keys

    def test_partial_scan(self):
        tree, keys = build(300, capacity=8, seed=6)
        lo, hi = keys[50], keys[150]
        result = tree.range_scan(lo, hi)
        assert [k for k, _v in result.items] == [
            k for k in keys if lo <= k <= hi
        ]

    def test_scan_respects_max_results(self):
        tree, keys = build(300, capacity=8, seed=7)
        result = tree.range_scan(min(keys), max(keys), max_results=10)
        assert result.count == 10
        assert [k for k, _v in result.items] == keys[:10]

    def test_scan_empty_range_inside_gap(self):
        tree = BPlusTree(capacity=4)
        for k in (10, 20, 30):
            tree.put(k, k)
        assert tree.range_scan(11, 19).items == []

    def test_invalid_range_rejected(self):
        tree = BPlusTree(capacity=4)
        with pytest.raises(ValueError):
            tree.range_scan(5, 4)

    def test_values_are_returned(self):
        tree, keys = build(100, capacity=8, seed=8)
        result = tree.range_scan(min(keys), max(keys))
        assert all(v == k * 2 for k, v in result.items)


class TestDelete:
    def test_delete_existing(self):
        tree = BPlusTree(capacity=4)
        tree.put(1, 1)
        assert tree.delete(1).ok
        assert tree.size == 0
        assert tree.get(1).items == []

    def test_delete_missing(self):
        tree = BPlusTree(capacity=4)
        tree.put(1, 1)
        assert not tree.delete(2).ok
        assert tree.size == 1

    def test_delete_half(self):
        tree, keys = build(800, capacity=8, seed=9)
        for k in keys[::2]:
            assert tree.delete(k).ok
        tree.validate()
        remaining = keys[1::2]
        result = tree.range_scan(min(keys), max(keys))
        assert [k for k, _v in result.items] == remaining

    def test_delete_everything_collapses(self):
        tree, keys = build(300, capacity=6, seed=10)
        for k in keys:
            assert tree.delete(k).ok
        assert tree.size == 0
        assert tree.height == 1
        assert tree.node_count == 1

    def test_merges_and_borrows_counted(self):
        tree, keys = build(400, capacity=6, seed=11)
        merges = borrows = 0
        for k in keys[:350]:
            result = tree.delete(k)
            merges += result.merges
            borrows += result.borrows
        assert merges > 0
        assert borrows > 0

    def test_churn_keeps_invariants(self):
        tree = BPlusTree(capacity=6)
        rng = random.Random(12)
        live = {}
        for step in range(2000):
            if live and rng.random() < 0.45:
                k = rng.choice(list(live))
                del live[k]
                assert tree.delete(k).ok
            else:
                k = rng.randrange(100000)
                tree.put(k, k + 1)
                live[k] = k + 1
            if step % 250 == 249:
                tree.validate()
        tree.validate()
        result = tree.range_scan(0, 100000)
        assert dict(result.items) == live


class TestBulkLoad:
    def test_empty(self):
        tree = BPlusTree.bulk_load([])
        assert tree.size == 0

    @pytest.mark.parametrize("n", [1, 5, 64, 1000])
    def test_matches_incremental(self, n):
        rng = random.Random(n)
        keys = rng.sample(range(n * 10 + 10), n)
        items = [(k, k * 3) for k in keys]
        tree = BPlusTree.bulk_load(items, capacity=8)
        tree.validate()
        assert tree.size == n
        for k in keys:
            assert tree.get(k).items == [(k, k * 3)]

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree.bulk_load([(1, 1), (1, 2)])

    def test_inserts_after_bulk(self):
        items = [(k * 2, k) for k in range(500)]
        tree = BPlusTree.bulk_load(items, capacity=8)
        for k in range(100):
            tree.put(k * 2 + 1, k)
        tree.validate()
        assert tree.size == 600

    def test_deletes_after_bulk(self):
        items = [(k, k) for k in range(400)]
        tree = BPlusTree.bulk_load(items, capacity=8)
        for k in range(0, 400, 2):
            assert tree.delete(k).ok
        tree.validate()
        assert tree.size == 200


class TestVersioning:
    def test_write_protocol(self):
        tree = BPlusTree(capacity=4)
        tree.put(1, 1)
        leaf = tree.root
        v0 = leaf.version
        leaf.begin_write()
        assert leaf.active_writers == 1
        leaf.end_write()
        assert leaf.version == v0 + 1

    def test_end_without_begin(self):
        tree = BPlusTree(capacity=4)
        with pytest.raises(RuntimeError):
            tree.root.end_write()

    def test_mutated_nodes_reported(self):
        tree = BPlusTree(capacity=4)
        result = tree.put(1, 1)
        assert tree.root in result.mutated_nodes


class TestHypothesis:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 10_000), max_size=200))
    def test_matches_dict_oracle(self, keys):
        tree = BPlusTree(capacity=5)
        oracle = {}
        for k in keys:
            tree.put(k, k * 7)
            oracle[k] = k * 7
        tree.validate()
        assert dict(tree.range_scan(0, 10_000).items) == oracle

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 5000), min_size=1, max_size=150),
           st.data())
    def test_delete_matches_oracle(self, keys, data):
        tree = BPlusTree(capacity=5)
        oracle = {}
        for k in keys:
            tree.put(k, k)
            oracle[k] = k
        to_delete = data.draw(st.sets(st.sampled_from(keys)))
        for k in to_delete:
            assert tree.delete(k).ok == (k in oracle)
            oracle.pop(k, None)
        tree.validate()
        assert dict(tree.range_scan(0, 5000).items) == oracle

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 3000), min_size=2, max_size=120,
                    unique=True),
           st.integers(0, 3000), st.integers(0, 3000))
    def test_scan_matches_oracle(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = BPlusTree.bulk_load([(k, k) for k in keys], capacity=5)
        expected = sorted(k for k in keys if lo <= k <= hi)
        assert [k for k, _v in tree.range_scan(lo, hi).items] == expected
