"""Tests for node structure and STR bulk loading."""

import random

import pytest

from repro.rtree import (
    DEFAULT_MAX_ENTRIES,
    Entry,
    Node,
    RStarTree,
    Rect,
    bulk_load,
    min_entries,
)


def random_items(n, seed=0, max_edge=0.01):
    rng = random.Random(seed)
    items = []
    for i in range(n):
        w, h = rng.uniform(0, max_edge), rng.uniform(0, max_edge)
        x, y = rng.uniform(0, 1 - w), rng.uniform(0, 1 - h)
        items.append((Rect(x, y, x + w, y + h), i))
    return items


class TestNode:
    def test_leaf_flags(self):
        assert Node(0).is_leaf
        assert not Node(1).is_leaf

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            Node(-1)

    def test_entry_needs_exactly_one_ref(self):
        with pytest.raises(ValueError):
            Entry(Rect(0, 0, 1, 1))
        with pytest.raises(ValueError):
            Entry(Rect(0, 0, 1, 1), child=Node(0), data_id=1)

    def test_add_sets_parent(self):
        parent = Node(1)
        child = Node(0)
        parent.add(Entry(Rect(0, 0, 1, 1), child=child))
        assert child.parent is parent

    def test_add_wrong_level_child(self):
        parent = Node(2)
        with pytest.raises(ValueError):
            parent.add(Entry(Rect(0, 0, 1, 1), child=Node(0)))

    def test_add_data_to_internal_rejected(self):
        node = Node(1)
        with pytest.raises(ValueError):
            node.add(Entry(Rect(0, 0, 1, 1), data_id=5))

    def test_mbr(self):
        node = Node(0)
        node.add(Entry(Rect(0, 0, 1, 1), data_id=1))
        node.add(Entry(Rect(2, 2, 3, 4), data_id=2))
        assert node.mbr() == Rect(0, 0, 3, 4)

    def test_mbr_empty_raises(self):
        with pytest.raises(ValueError):
            Node(0).mbr()

    def test_remove_clears_parent(self):
        parent = Node(1)
        child = Node(0)
        entry = Entry(Rect(0, 0, 1, 1), child=child)
        parent.add(entry)
        parent.remove(entry)
        assert child.parent is None

    def test_entry_for_child_missing(self):
        with pytest.raises(KeyError):
            Node(1).entry_for_child(Node(0))

    def test_write_window_versioning(self):
        node = Node(0)
        v0 = node.version
        node.begin_write()
        assert node.active_writers == 1
        node.end_write()
        assert node.version == v0 + 1
        assert node.active_writers == 0

    def test_end_write_without_begin(self):
        with pytest.raises(RuntimeError):
            Node(0).end_write()

    def test_min_entries_formula(self):
        assert min_entries(64) == 25
        assert min_entries(4) == 2
        assert min_entries(5) == 2


class TestBulkLoad:
    def test_empty(self):
        tree = bulk_load([])
        assert tree.size == 0
        assert tree.search(Rect(0, 0, 1, 1)).data_ids == []

    def test_single_item(self):
        tree = bulk_load([(Rect(0.1, 0.1, 0.2, 0.2), 7)])
        assert tree.size == 1
        assert tree.search(Rect(0, 0, 1, 1)).data_ids == [7]

    @pytest.mark.parametrize("n", [10, 100, 1000])
    def test_search_equals_brute_force(self, n):
        items = random_items(n, seed=n)
        tree = bulk_load(items, max_entries=16)
        rng = random.Random(n + 1)
        for _ in range(20):
            s = rng.uniform(0, 0.3)
            x, y = rng.uniform(0, 1 - s), rng.uniform(0, 1 - s)
            query = Rect(x, y, x + s, y + s)
            expected = sorted(i for r, i in items if r.intersects(query))
            assert sorted(tree.search(query).data_ids) == expected

    def test_structure_is_valid(self):
        tree = bulk_load(random_items(3000, seed=5), max_entries=32)
        tree.validate()

    def test_height_near_optimal(self):
        items = random_items(4000, seed=6)
        tree = bulk_load(items, max_entries=16, fill=0.9)
        # ceil(log_14.4(4000/14.4)) + 1 ~ 3
        assert tree.height <= 4

    def test_fill_validation(self):
        with pytest.raises(ValueError):
            bulk_load(random_items(10), fill=0.05)
        with pytest.raises(ValueError):
            bulk_load(random_items(10), fill=1.2)

    def test_inserts_after_bulk_load(self):
        items = random_items(500, seed=8)
        tree = bulk_load(items, max_entries=16)
        extra = random_items(100, seed=9)
        for rect, i in extra:
            tree.insert(rect, 1000 + i)
        tree.validate()
        hit = tree.search(Rect(0, 0, 1, 1))
        assert len(hit.data_ids) == 600

    def test_deletes_after_bulk_load(self):
        items = random_items(300, seed=10)
        tree = bulk_load(items, max_entries=8)
        for rect, i in items[:150]:
            assert tree.delete(rect, i).ok
        tree.validate()
        assert tree.size == 150

    def test_bulk_uses_custom_allocator(self):
        allocated = []

        def alloc():
            cid = len(allocated)
            allocated.append(cid)
            return cid

        tree = bulk_load(random_items(200, seed=11), max_entries=8,
                         alloc_chunk=alloc)
        assert len(allocated) >= tree.node_count

    def test_quality_comparable_to_incremental(self):
        """STR trees should not visit wildly more nodes than R* trees."""
        items = random_items(2000, seed=12)
        str_tree = bulk_load(items, max_entries=16)
        rstar = RStarTree(max_entries=16)
        for rect, i in items:
            rstar.insert(rect, i)
        rng = random.Random(13)
        str_visits = rstar_visits = 0
        for _ in range(30):
            s = 0.05
            x, y = rng.uniform(0, 1 - s), rng.uniform(0, 1 - s)
            q = Rect(x, y, x + s, y + s)
            str_visits += str_tree.search(q).nodes_visited
            rstar_visits += rstar.search(q).nodes_visited
        assert str_visits < rstar_visits * 3
