"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheme == "catfish"
        assert args.fabric == "ib-100g"
        assert args.clients == 16

    def test_run_custom(self):
        args = build_parser().parse_args([
            "run", "--scheme", "tcp", "--fabric", "eth-1g",
            "--clients", "4", "--requests", "10", "--scale", "0.01",
        ])
        assert args.scheme == "tcp"
        assert args.fabric == "eth-1g"
        assert args.clients == 4

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "quic"])

    def test_unknown_fabric_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--fabric", "token-ring"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    SMALL = ["--clients", "2", "--requests", "5",
             "--dataset-size", "500", "--server-cores", "2"]

    def test_schemes_lists_all(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        for scheme in ("catfish", "tcp", "fast-messaging",
                       "rdma-offloading"):
            assert scheme in out

    def test_run_prints_result_row(self, capsys):
        code = main(["run", "--scheme", "catfish"] + self.SMALL)
        assert code == 0
        out = capsys.readouterr().out
        assert "catfish" in out
        assert "Kops" in out

    def test_run_verbose(self, capsys):
        code = main(["run", "--scheme", "catfish", "-v"] + self.SMALL)
        assert code == 0
        out = capsys.readouterr().out
        assert "heartbeats" in out
        assert "p50/p99" in out

    def test_run_rejects_rdma_scheme_on_ethernet(self, capsys):
        code = main(["run", "--scheme", "catfish",
                     "--fabric", "eth-1g"] + self.SMALL)
        assert code == 2
        assert "RDMA fabric" in capsys.readouterr().err

    def test_run_tcp_on_ethernet(self, capsys):
        code = main(["run", "--scheme", "tcp",
                     "--fabric", "eth-1g"] + self.SMALL)
        assert code == 0
        assert "tcp" in capsys.readouterr().out

    def test_compare_default_four(self, capsys):
        code = main(["compare"] + self.SMALL)
        assert code == 0
        out = capsys.readouterr().out
        for scheme in ("tcp", "fast-messaging", "rdma-offloading",
                       "catfish"):
            assert scheme in out

    def test_compare_custom_schemes(self, capsys):
        code = main(["compare", "--schemes", "catfish",
                     "fast-messaging-event"] + self.SMALL)
        assert code == 0
        out = capsys.readouterr().out
        assert "fast-messaging-event" in out

    def test_compare_unknown_scheme(self, capsys):
        code = main(["compare", "--schemes", "quic"] + self.SMALL)
        assert code == 2

    def test_hybrid_workload(self, capsys):
        code = main(["run", "--scheme", "catfish",
                     "--workload", "hybrid"] + self.SMALL)
        assert code == 0

    def test_kv_btree(self, capsys):
        code = main(["kv", "--index", "btree", "--scheme", "catfish",
                     "--clients", "2", "--requests", "10",
                     "--keys", "500", "--server-cores", "2"])
        assert code == 0
        assert "btree:catfish" in capsys.readouterr().out

    def test_kv_cuckoo_bandit(self, capsys):
        code = main(["kv", "--index", "cuckoo",
                     "--scheme", "catfish-bandit",
                     "--clients", "2", "--requests", "10",
                     "--keys", "500", "--server-cores", "2"])
        assert code == 0
        assert "cuckoo:catfish-bandit" in capsys.readouterr().out

    def test_kv_rejects_cuckoo_scans(self, capsys):
        with pytest.raises(ValueError):
            main(["kv", "--index", "cuckoo", "--scan-fraction", "0.2",
                  "--clients", "2", "--requests", "5", "--keys", "200"])


class TestChaosSubcommand:
    FAST = ["--clients", "2", "--requests", "120", "--dataset-size", "1000"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.scenario is None
        assert args.seed == 0
        assert args.list is False

    def test_scenario_is_repeatable(self):
        args = build_parser().parse_args(
            ["chaos", "--scenario", "link-loss",
             "--scenario", "worker-crash"])
        assert args.scenario == ["link-loss", "worker-crash"]

    def test_list_prints_all_scenarios(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        from repro.faults import SCENARIOS
        for name in SCENARIOS:
            assert name in out

    def test_unknown_scenario_exits_2(self, capsys):
        code = main(["chaos", "--scenario", "meteor-strike"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_single_scenario_green(self, capsys):
        code = main(["chaos", "--scenario", "worker-crash"] + self.FAST)
        assert code == 0
        out = capsys.readouterr().out
        assert "worker-crash" in out
        assert "PASS" in out
        assert "1 scenario(s) passed" in out

    def test_verbose_prints_invariants(self, capsys):
        code = main(["chaos", "--scenario", "heartbeat-blackout",
                     "-v"] + self.FAST)
        assert code == 0
        out = capsys.readouterr().out
        assert "oracle-match" in out
        assert "fingerprint:" in out


class TestShardSubcommand:
    SMALL = ["--clients", "2", "--requests", "20",
             "--dataset-size", "600", "--server-cores", "2",
             "--scale", "0.02"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["shard"])
        assert args.shards == 4
        assert args.workload == "mixed"
        assert args.no_verify is False

    def test_shard_verifies_against_oracle(self, capsys):
        code = main(["shard", "--shards", "3"] + self.SMALL)
        assert code == 0
        out = capsys.readouterr().out
        assert "shard map (3 shards)" in out
        assert "identical to the single-server oracle" in out

    def test_shard_rejects_non_rdma_fabric(self, capsys):
        code = main(["shard", "--fabric", "eth-1g"] + self.SMALL)
        assert code == 2
        assert "RDMA" in capsys.readouterr().err

    def test_no_verify_skips_oracle(self, capsys):
        code = main(["shard", "--no-verify"] + self.SMALL)
        assert code == 0
        out = capsys.readouterr().out
        assert "verification skipped" in out
        assert "oracle" not in out.split("skipped")[1]

    def test_run_accepts_shards_flag(self, capsys):
        code = main(["run", "--scheme", "catfish",
                     "--shards", "2"] + self.SMALL)
        assert code == 0
        assert "catfish" in capsys.readouterr().out

    def test_run_sharded_scheme(self, capsys):
        code = main(["run", "--scheme", "catfish-sharded"] + self.SMALL)
        assert code == 0
        assert "catfish-sharded" in capsys.readouterr().out

    def test_mixed_workload_single_server(self, capsys):
        code = main(["run", "--scheme", "catfish",
                     "--workload", "mixed"] + self.SMALL)
        assert code == 0

    def test_chaos_shard_loss_listed(self, capsys):
        assert main(["chaos", "--list"]) == 0
        assert "shard-loss" in capsys.readouterr().out


class TestPerfSubcommand:
    def test_perf_parser_defaults(self):
        args = build_parser().parse_args(["perf"])
        assert args.out == "BENCH_perf.json"
        assert args.baseline is False
        assert args.scale is None
        assert args.repeats >= 1

    def test_perf_parser_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf", "--scale", "galactic"])

    def test_perf_writes_artifact(self, tmp_path, monkeypatch, capsys):
        """A tiny perf run produces a schema-valid artifact."""
        import json

        from repro import perfbench

        tiny = dict(kernel_loops=2_000, search_queries=20,
                    dataset_size=1_000, e2e_clients=2, e2e_requests=5)
        monkeypatch.setitem(perfbench.SCALE_PARAMS, "small", tiny)
        out = tmp_path / "BENCH_perf.json"
        code = main(["perf", "--out", str(out), "--scale", "small",
                     "--repeats", "1"])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "catfish-perf/v1"
        assert doc["baseline"] is None
        run = doc["current"]
        assert run["kernel_events_per_s"] > 0
        assert run["search_visits_per_s"] > 0
        assert run["search_batched_visits_per_s"] > 0
        assert run["scan_kernel"] in ("numpy", "python")
        assert set(run["end_to_end"]["points"]) == {"adaptive", "offload"}
        # Recording a baseline afterwards fills in the speedup block.
        assert main(["perf", "--out", str(out), "--scale", "small",
                     "--repeats", "1", "--baseline"]) == 0
        doc = json.loads(out.read_text())
        assert doc["baseline"] is not None
        assert set(doc["speedup"]) == {"kernel", "search", "search_batched",
                                       "end_to_end"}
