"""Cuckoo hash table correctness + its Catfish framework integration."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.btree import KvFmSession, KvRequest, OP_GET, OP_PUT
from repro.client import AdaptiveParams, ClientStats
from repro.cuckoo import (
    CuckooCatfishSession,
    CuckooFullError,
    CuckooHashTable,
    CuckooOffloadEngine,
    CuckooService,
)
from repro.hw import Host
from repro.msg import Heartbeat
from repro.net import IB_100G, Network
from repro.server import EVENT, FastMessagingServer
from repro.sim import Simulator
from repro.transport import connect


class TestTable:
    def test_put_get(self):
        table = CuckooHashTable(64)
        table.put(1, 10)
        assert table.get(1).items == [(1, 10)]
        assert table.get(2).items == []

    def test_overwrite(self):
        table = CuckooHashTable(64)
        table.put(1, 10)
        table.put(1, 20)
        assert table.size == 1
        assert table.get(1).items == [(1, 20)]

    def test_delete(self):
        table = CuckooHashTable(64)
        table.put(1, 10)
        assert table.delete(1).ok
        assert table.size == 0
        assert not table.delete(1).ok

    def test_validation_args(self):
        with pytest.raises(ValueError):
            CuckooHashTable(1)
        with pytest.raises(ValueError):
            CuckooHashTable(8, slots_per_bucket=0)

    def test_candidates_deterministic(self):
        a = CuckooHashTable(128, seed=5)
        b = CuckooHashTable(128, seed=5)
        for key in range(100):
            assert a.bucket_indices(key) == b.bucket_indices(key)
        c = CuckooHashTable(128, seed=6)
        assert any(
            a.bucket_indices(k) != c.bucket_indices(k) for k in range(100)
        )

    def test_fill_to_high_load(self):
        table = CuckooHashTable(256, slots_per_bucket=4, seed=1)
        n = int(table.capacity * 0.9)
        for k in range(n):
            table.put(k, k)
        table.validate()
        assert table.load_factor == pytest.approx(0.9, abs=0.01)
        for k in random.Random(2).sample(range(n), 100):
            assert table.get(k).items == [(k, k)]

    def test_kicks_happen_under_load(self):
        table = CuckooHashTable(128, slots_per_bucket=4, seed=3)
        for k in range(int(table.capacity * 0.85)):
            table.put(k, k)
        assert table.total_kicks > 0

    def test_full_table_raises(self):
        table = CuckooHashTable(4, slots_per_bucket=1, seed=4, max_kicks=50)
        inserted = 0
        with pytest.raises(CuckooFullError):
            for k in range(100):
                table.put(k, k)
                inserted += 1
        assert inserted >= 2  # some fit before the failure

    def test_mutated_buckets_reported(self):
        table = CuckooHashTable(64)
        result = table.put(7, 7)
        assert len(result.mutated_nodes) == 1
        h1, h2 = table.bucket_indices(7)
        assert result.mutated_nodes[0].index in (h1, h2)

    def test_churn_against_oracle(self):
        table = CuckooHashTable(512, seed=6)
        oracle = {}
        rng = random.Random(7)
        for _ in range(3000):
            key = rng.randrange(1200)
            op = rng.random()
            if op < 0.5:
                table.put(key, key * 3)
                oracle[key] = key * 3
            elif op < 0.8:
                assert table.delete(key).ok == (key in oracle)
                oracle.pop(key, None)
            else:
                expected = ([(key, oracle[key])]
                            if key in oracle else [])
                assert table.get(key).items == expected
        table.validate()
        assert table.size == len(oracle)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 10**9), max_size=150))
    def test_hypothesis_oracle(self, keys):
        table = CuckooHashTable(256, seed=8)
        oracle = {}
        for k in keys:
            table.put(k, k ^ 0xFF)
            oracle[k] = k ^ 0xFF
        table.validate()
        for k in oracle:
            assert table.get(k).items == [(k, oracle[k])]


def make_cuckoo(n=2000, cores=4, n_buckets=2048, seed=2):
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=cores)
    net.attach_server(server_host)
    rng = random.Random(seed)
    keys = rng.sample(range(10**6), n)
    items = [(k, k + 1) for k in keys]
    service = CuckooService(sim, server_host, items, n_buckets=n_buckets,
                            seed=seed)
    fm_server = FastMessagingServer(sim, service, net, mode=EVENT)
    client_host = Host(sim, "client", IB_100G, cores=2)
    conn = fm_server.open_connection(client_host)
    stats = ClientStats()
    fm = KvFmSession(sim, conn, 0, stats)
    engine = CuckooOffloadEngine(
        sim, conn.client_end, service.descriptor(), service.costs, stats
    )
    return sim, server_host, service, fm, engine, stats, keys


class TestService:
    def test_fm_get_round_trip(self):
        sim, sh, service, fm, engine, stats, keys = make_cuckoo()
        k = keys[0]

        def client():
            items = yield from fm.execute(KvRequest(OP_GET, key=k))
            return items

        p = sim.process(client())
        sim.run()
        assert p.value == [(k, k + 1)]
        assert service.gets_served == 1

    def test_fm_put_and_delete(self):
        from repro.btree import OP_KV_DELETE
        sim, sh, service, fm, engine, stats, keys = make_cuckoo()

        def client():
            yield from fm.execute(KvRequest(OP_PUT, key=99, value=1))
            got = yield from fm.execute(KvRequest(OP_GET, key=99))
            yield from fm.execute(KvRequest(OP_KV_DELETE, key=99))
            gone = yield from fm.execute(KvRequest(OP_GET, key=99))
            return got, gone

        p = sim.process(client())
        sim.run()
        got, gone = p.value
        assert got == [(99, 1)]
        assert gone == []

    def test_offload_get_correct(self):
        sim, sh, service, fm, engine, stats, keys = make_cuckoo()
        sample = random.Random(3).sample(keys, 30)

        def client():
            out = []
            for k in sample:
                items = yield from engine.get(k)
                out.append(items)
            missing = yield from engine.get(10**9 + 7)
            out.append(missing)
            return out

        p = sim.process(client())
        sim.run()
        for k, items in zip(sample, p.value):
            assert items == [(k, k + 1)]
        assert p.value[-1] == []

    def test_offload_zero_server_cpu(self):
        sim, sh, service, fm, engine, stats, keys = make_cuckoo()

        def client():
            for k in keys[:50]:
                yield from engine.get(k)

        sim.process(client())
        sim.run()
        assert sh.cpu.total_work_seconds == 0.0
        assert service.one_sided_reads >= 50

    def test_offload_is_single_round_trip(self):
        """Both bucket reads overlap: latency ~= one read RTT."""
        sim, sh, service, fm, engine, stats, keys = make_cuckoo()

        def client():
            t0 = sim.now
            yield from engine.get(keys[0])
            return sim.now - t0

        p = sim.process(client())
        sim.run()
        # one read RTT ~3 us + check; two sequential would be > 6 us
        assert p.value < 6e-6

    def test_torn_retry_under_concurrent_kicks(self):
        # Small, highly loaded table: displacement walks touch many
        # buckets, so write windows cover a real fraction of the table.
        sim, sh, service, fm, engine, stats, keys = make_cuckoo(
            n=850, n_buckets=256  # ~83% load
        )
        rng = random.Random(11)

        def writer():
            for i in range(120):
                yield from service.execute_put(10**7 + i, i)

        def reader():
            for _ in range(800):
                yield from engine.get(rng.choice(keys))
                yield sim.timeout(rng.uniform(0, 2e-6))

        sim.process(writer())
        sim.process(reader())
        sim.run()
        # kicks touch many buckets; some reads must have collided
        assert stats.torn_retries > 0

    def test_catfish_session_offloads_when_busy(self):
        sim, sh, service, fm, engine, stats, keys = make_cuckoo(cores=2)
        session = CuckooCatfishSession(
            sim, fm, engine, stats,
            params=AdaptiveParams(N=8, T=0.9, Inv=0.2e-3),
            rng=random.Random(5),
        )

        def feeder():
            while sim.now < 20e-3:
                fm.mailbox.deliver(
                    Heartbeat(1.0, seq=fm.mailbox.seq + 1))
                yield sim.timeout(0.2e-3)

        def client():
            for k in keys[:150]:
                yield from session.execute(KvRequest(OP_GET, key=k))
                yield sim.timeout(50e-6)

        sim.process(feeder())
        done = sim.process(client())
        sim.run_until_triggered(done)
        assert stats.offloaded_requests > 0
        assert stats.fast_messaging_requests > 0

    def test_full_put_reports_failure(self):
        sim = Simulator()
        net = Network(sim, IB_100G)
        server_host = Host(sim, "server", IB_100G, cores=2)
        net.attach_server(server_host)
        service = CuckooService(sim, server_host, n_buckets=4,
                                seed=4)
        service.table.max_kicks = 20

        def client():
            failures = 0
            for k in range(60):
                ok = yield from service.execute_put(k, k)
                if not ok:
                    failures += 1
            return failures

        p = sim.process(client())
        sim.run()
        assert p.value > 0
        assert service.failed_puts == p.value
