"""Tests for Zipf/hotspot skew generators and the ASCII viz helpers."""

import random
from collections import Counter

import pytest

from repro import ExperimentConfig, run_experiment
from repro.viz import bar_chart, render_timeline, sparkline
from repro.workloads.scales import FixedScale
from repro.workloads.skew import (
    HotspotQueries,
    ZipfSampler,
    zipf_sample,
    zipf_weights,
)


class TestZipf:
    def test_weights_normalized_and_decreasing(self):
        w = zipf_weights(10, s=1.0)
        assert sum(w) == pytest.approx(1.0)
        assert w == sorted(w, reverse=True)

    def test_s_zero_is_uniform(self):
        w = zipf_weights(5, s=0.0)
        assert all(x == pytest.approx(0.2) for x in w)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, s=-1)

    def test_sampler_prefers_low_ranks(self):
        sampler = ZipfSampler(20, s=1.0)
        rng = random.Random(1)
        counts = Counter(sampler.sample(rng) for _ in range(5000))
        assert counts[0] > counts[10] > 0
        # rank-0 share under Zipf(1, n=20) is 1/H_20 ~ 0.278
        assert 0.2 < counts[0] / 5000 < 0.36

    def test_samples_within_range(self):
        rng = random.Random(2)
        for _ in range(200):
            assert 0 <= zipf_sample(rng, 7, 1.2) < 7


class TestHotspots:
    def test_rects_in_unit_square(self):
        hotspots = HotspotQueries(seed=3)
        rng = random.Random(4)
        gen = FixedScale(0.01)
        for _ in range(300):
            r = hotspots.next_rect(rng, gen)
            assert 0 <= r.minx and r.maxx <= 1
            assert 0 <= r.miny and r.maxy <= 1
            assert r.width <= 0.011

    def test_queries_cluster(self):
        """Most queries land near some hotspot (within a few spreads)."""
        hotspots = HotspotQueries(n_hotspots=8, spread=0.01, seed=5)
        rng = random.Random(6)
        gen = FixedScale(0.001)
        near = 0
        for _ in range(500):
            r = hotspots.next_rect(rng, gen)
            cx, cy = r.center()
            d2 = min((cx - hx) ** 2 + (cy - hy) ** 2
                     for hx, hy in hotspots.hotspots)
            if d2 < (4 * 0.01) ** 2:
                near += 1
        assert near / 500 > 0.9

    def test_top_hotspot_dominates(self):
        hotspots = HotspotQueries(n_hotspots=8, spread=0.005, seed=7)
        rng = random.Random(8)
        gen = FixedScale(0.0001)
        hits = Counter()
        for _ in range(2000):
            r = hotspots.next_rect(rng, gen)
            cx, cy = r.center()
            nearest = min(
                range(8),
                key=lambda i: (cx - hotspots.hotspots[i][0]) ** 2
                + (cy - hotspots.hotspots[i][1]) ** 2,
            )
            hits[nearest] += 1
        top_two = sum(c for _i, c in hits.most_common(2))
        assert top_two / 2000 > 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotQueries(n_hotspots=0)
        with pytest.raises(ValueError):
            HotspotQueries(spread=0)

    def test_skewed_hybrid_experiment_runs(self):
        result = run_experiment(ExperimentConfig(
            scheme="catfish",
            workload_kind="hybrid-skewed",
            n_clients=4,
            requests_per_client=50,
            dataset_size=1500,
            max_entries=16,
            server_cores=4,
            seed=9,
        ))
        assert result.total_requests == 200
        assert result.inserts_served > 0


class TestViz:
    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_flat(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_sparkline_ramp(self):
        line = sparkline([0, 0.5, 1.0], 0.0, 1.0)
        assert len(line) == 3
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert line[0] < line[1] < line[2]

    def test_sparkline_respects_pinned_scale(self):
        # values near the middle of a pinned [0, 1] scale
        line = sparkline([0.5], 0.0, 1.0)
        assert line not in ("▁", "█")

    def test_bar_chart(self):
        lines = bar_chart([("catfish", 100.0), ("tcp", 25.0)], width=20)
        assert len(lines) == 2
        assert lines[0].count("#") == 20
        assert 4 <= lines[1].count("#") <= 6
        assert "100.0" in lines[0]

    def test_bar_chart_empty(self):
        assert bar_chart([]) == []

    def test_render_timeline_empty(self):
        assert render_timeline([]) == ["(no timeline collected)"]

    def test_render_timeline_basic(self):
        timeline = [(i * 1e-3, i / 10, 1 - i / 10) for i in range(10)]
        lines = render_timeline(timeline)
        assert len(lines) == 3
        assert "server cpu" in lines[1]
        assert "offload frac" in lines[2]

    def test_render_timeline_downsamples(self):
        timeline = [(i * 1e-3, 0.5, 0.5) for i in range(1000)]
        lines = render_timeline(timeline, max_points=50)
        assert "50 windows" in lines[0]

    def test_cli_timeline_flag(self, capsys):
        from repro.cli import main
        code = main([
            "run", "--scheme", "catfish", "--timeline",
            "--clients", "4", "--requests", "30",
            "--dataset-size", "800", "--server-cores", "2",
            "--heartbeat-ms", "0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "server cpu" in out
        assert "offload frac" in out
