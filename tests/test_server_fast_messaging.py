"""End-to-end fast messaging: ring buffers + verbs + server workers."""

import pytest

from repro.client import ClientStats, FmSession, Request
from repro.client.base import OP_INSERT, OP_SEARCH
from repro.hw import Host
from repro.msg import Heartbeat
from repro.net import IB_100G, Network
from repro.rtree import Rect
from repro.server import (
    EVENT,
    POLLING,
    FastMessagingServer,
    HeartbeatService,
    RTreeServer,
)
from repro.sim import Simulator
from repro.workloads import uniform_dataset


def make_fm(mode=EVENT, n_items=1000, cores=4, max_entries=16):
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=cores)
    net.attach_server(server_host)
    items = uniform_dataset(n_items, seed=5)
    rtree_server = RTreeServer(sim, server_host, items,
                               max_entries=max_entries)
    fm_server = FastMessagingServer(sim, rtree_server, net, mode=mode)
    return sim, net, server_host, rtree_server, fm_server, items


def make_session(sim, net, fm_server, client_id=0):
    client_host = Host(sim, f"client-{client_id}", IB_100G, cores=2)
    conn = fm_server.open_connection(client_host)
    stats = ClientStats()
    session = FmSession(sim, conn, client_id, stats)
    return session, stats, conn, client_host


@pytest.mark.parametrize("mode", [EVENT, POLLING])
def test_search_round_trip(mode):
    sim, net, server_host, rtree_server, fm_server, items = make_fm(mode)
    session, stats, conn, _client = make_session(sim, net, fm_server)
    query = Rect(0.2, 0.2, 0.5, 0.5)

    def client():
        matches = yield from session.search(query)
        return matches

    p = sim.process(client())
    sim.run()
    expected = sorted(rtree_server.tree.search(query).data_ids)
    assert sorted(i for _r, i in p.value) == expected
    assert fm_server.requests_handled == 1
    assert stats.fast_messaging_requests == 1


def test_large_response_is_segmented():
    sim, net, server_host, rtree_server, fm_server, items = make_fm(
        n_items=3000
    )
    session, stats, conn, _client = make_session(sim, net, fm_server)
    query = Rect(0, 0, 1, 1)  # all 3000 items; >> one 8 KB segment

    def client():
        matches = yield from session.search(query)
        return matches

    p = sim.process(client())
    sim.run()
    assert len(p.value) == 3000
    # response ring must have carried several messages
    assert conn.response_ring.messages_received > 5


def test_insert_round_trip():
    sim, net, server_host, rtree_server, fm_server, items = make_fm()
    session, stats, conn, _client = make_session(sim, net, fm_server)
    rect = Rect(0.9, 0.9, 0.90001, 0.90001)

    def client():
        yield from session.execute(Request(OP_INSERT, rect, data_id=555555))
        matches = yield from session.search(rect)
        return matches

    p = sim.process(client())
    sim.run()
    assert 555555 in [i for _r, i in p.value]
    assert rtree_server.inserts_served == 1


def test_event_mode_uses_immediate_data():
    sim, net, server_host, rtree_server, fm_server, items = make_fm(EVENT)
    session, stats, conn, _client = make_session(sim, net, fm_server)
    assert conn.use_imm
    assert conn.server_channel is not None

    def client():
        yield from session.search(Rect(0.1, 0.1, 0.2, 0.2))

    sim.process(client())
    sim.run()
    assert conn.server_channel.wakeups >= 1


def test_polling_mode_sets_service_inflation():
    sim, net, server_host, rtree_server, fm_server, items = make_fm(
        POLLING, cores=2
    )
    for i in range(6):  # 6 connections on 2 cores -> oversubscribed
        make_session(sim, net, fm_server, client_id=i)
    assert rtree_server.service_inflation > 1.0


def test_event_mode_never_inflates_service():
    sim, net, server_host, rtree_server, fm_server, items = make_fm(
        EVENT, cores=2
    )
    for i in range(6):
        make_session(sim, net, fm_server, client_id=i)
    assert rtree_server.service_inflation == 1.0


def test_requests_consume_zero_client_found_server_cpu_when_idle():
    """No requests -> the event-driven server burns no CPU at all."""
    sim, net, server_host, rtree_server, fm_server, items = make_fm(EVENT)
    make_session(sim, net, fm_server)
    sim.run(until=0.01)
    assert server_host.cpu.total_work_seconds == 0.0


def test_many_clients_interleave():
    sim, net, server_host, rtree_server, fm_server, items = make_fm(
        n_items=2000, cores=4
    )
    sessions = [make_session(sim, net, fm_server, client_id=i)[0]
                for i in range(8)]
    done = []

    def client(session, i):
        for k in range(5):
            matches = yield from session.search(Rect(0.1, 0.1, 0.3, 0.3))
            assert matches is not None
        done.append(i)

    for i, session in enumerate(sessions):
        sim.process(client(session, i))
    sim.run()
    assert sorted(done) == list(range(8))
    assert fm_server.requests_handled == 40


def test_event_worker_drains_coalesced_completions():
    """Two requests landed in the ring but only ONE channel notification
    fired (completion coalescing): the worker must drain the ring on that
    single wakeup instead of leaving the second request until the next
    (unrelated) wakeup."""
    from repro.msg.codec import SearchRequest

    sim, net, server_host, rtree_server, fm_server, items = make_fm(EVENT)
    session, stats, conn, _client = make_session(sim, net, fm_server)

    query = Rect(0.1, 0.1, 0.3, 0.3)
    for req_id in (1, 2):
        wire = SearchRequest(req_id, query)
        assert conn.request_ring.try_reserve(wire)
        conn.request_ring.deposit(wire)
    # Back-to-back writes, one coalesced completion event.
    conn.server_channel.notify()

    sim.run(until=0.05)
    assert fm_server.requests_handled == 2
    assert conn.request_ring.pending_messages == 0


def test_invalid_mode_rejected():
    sim = Simulator()
    net = Network(sim, IB_100G)
    host = Host(sim, "server", IB_100G)
    net.attach_server(host)
    server = RTreeServer(sim, host, uniform_dataset(10), max_entries=8)
    with pytest.raises(ValueError):
        FastMessagingServer(sim, server, net, mode="interrupt")


class TestHeartbeats:
    def test_heartbeats_reach_mailbox(self):
        sim, net, server_host, rtree_server, fm_server, items = make_fm()
        session, stats, conn, _client = make_session(sim, net, fm_server)
        service = HeartbeatService(
            sim, server_host.cpu.window_utilization, interval=1e-3
        )
        service.subscribe(
            conn.response_ring, lambda hb: conn.server_post_response(hb)
        )
        service.start()
        sim.run(until=0.0105)
        assert service.beats_sent >= 9
        assert session.heartbeats_seen >= 9
        assert conn.mailbox.updates == session.heartbeats_seen

    def test_heartbeat_reports_utilization(self):
        sim, net, server_host, rtree_server, fm_server, items = make_fm()
        session, stats, conn, _client = make_session(sim, net, fm_server)
        service = HeartbeatService(
            sim, server_host.cpu.window_utilization, interval=1e-3
        )
        service.subscribe(
            conn.response_ring, lambda hb: conn.server_post_response(hb)
        )
        service.start()

        def burn():
            # keep all 4 cores busy so utilization reads ~1.0
            yield from server_host.cpu.execute(1.0)

        for _ in range(4):
            sim.process(burn())
        sim.run(until=0.01)
        assert conn.mailbox.value > 0.9

    def test_mailbox_read_and_clear(self):
        sim, net, server_host, rtree_server, fm_server, items = make_fm()
        session, stats, conn, _client = make_session(sim, net, fm_server)
        conn.mailbox.deliver(Heartbeat(0.7, seq=1))
        assert conn.mailbox.read_and_clear() == 0.7
        assert conn.mailbox.value == 0.0

    def test_heartbeat_dropped_when_ring_full(self):
        sim, net, server_host, rtree_server, fm_server, items = make_fm()
        session, stats, conn, _client = make_session(sim, net, fm_server)
        # Exhaust the response ring with pending reservations.
        while conn.response_ring.try_reserve(Heartbeat(0.5)):
            pass
        service = HeartbeatService(
            sim, server_host.cpu.window_utilization, interval=1e-3
        )
        service.subscribe(
            conn.response_ring, lambda hb: conn.server_post_response(hb)
        )
        service.start()
        sim.run(until=0.005)
        assert service.beats_dropped >= 4
        assert service.beats_sent == 0

    def test_heartbeat_interval_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            HeartbeatService(sim, lambda: 0.0, interval=0.0)

    def test_mailbox_rejects_non_heartbeat(self):
        from repro.server import HeartbeatMailbox
        box = HeartbeatMailbox()
        with pytest.raises(TypeError):
            box.rdma_write(0, 8, "not a heartbeat", 0.0)
