"""Full-fidelity byte mode: offloading over real packed chunk bytes.

These tests prove the chunk codec is complete: the offloaded traversal
works from nothing but the bytes a real NIC would DMA, with FaRM's
version comparison as the only consistency mechanism.
"""

import random

import pytest

from repro.client import ClientStats, OffloadEngine
from repro.hw import Host
from repro.net import IB_100G, Network
from repro.rtree import Rect, pack_node, unpack_node
from repro.rtree.serialize import (
    garbage_chunk,
    pack_node_torn,
    view_from_bytes,
)
from repro.server import RTreeServer
from repro.sim import Simulator
from repro.transport import connect
from repro.workloads import uniform_dataset


def make_byte_stack(n_items=1200, max_entries=16, multi_issue=True):
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=4)
    net.attach_server(server_host)
    items = uniform_dataset(n_items, seed=21)
    server = RTreeServer(sim, server_host, items, max_entries=max_entries,
                         byte_mode=True)
    client_host = Host(sim, "client", IB_100G, cores=2)
    qp, _ = connect(sim, net, client_host, server_host)
    stats = ClientStats()
    engine = OffloadEngine(sim, qp, server.offload_descriptor(),
                           server.costs, stats, multi_issue=multi_issue)
    return sim, server_host, server, engine, stats


class TestCodecHelpers:
    def test_view_from_clean_bytes(self):
        from repro.rtree import Entry, Node
        node = Node(0, chunk_id=3)
        node.add(Entry(Rect(0.1, 0.2, 0.3, 0.4), data_id=9))
        node.version = 7
        view = view_from_bytes(pack_node(node, 8), 8)
        assert view is not None
        assert view.chunk_id == 3
        assert view.entries == ((Rect(0.1, 0.2, 0.3, 0.4), 9),)
        assert view.version == 7
        assert not view.torn

    def test_view_from_torn_bytes_is_rejected(self):
        from repro.rtree import Entry, Node
        node = Node(0, chunk_id=3)
        node.add(Entry(Rect(0, 0, 1, 1), data_id=1))
        assert view_from_bytes(pack_node_torn(node, 8), 8) is None

    def test_view_from_garbage_is_rejected(self):
        assert view_from_bytes(garbage_chunk(8), 8) is None

    def test_torn_image_differs_only_in_versions(self):
        from repro.rtree import Entry, Node
        node = Node(0, chunk_id=3)
        node.add(Entry(Rect(0, 0, 1, 1), data_id=1))
        clean = pack_node(node, 8)
        torn = pack_node_torn(node, 8)
        # payload identical, version area differs
        from repro.rtree.serialize import payload_size
        assert clean[:payload_size(8)] == torn[:payload_size(8)]
        assert clean != torn

    def test_unpack_of_torn_image_flags_inconsistency(self):
        from repro.rtree import Entry, Node
        node = Node(0, chunk_id=3)
        node.add(Entry(Rect(0, 0, 1, 1), data_id=1))
        img = unpack_node(pack_node_torn(node, 8), 8)
        assert not img.versions_consistent


class TestByteModeTraversal:
    @pytest.mark.parametrize("multi_issue", [False, True])
    @pytest.mark.parametrize("query", [
        Rect(0, 0, 1, 1),
        Rect(0.3, 0.3, 0.6, 0.6),
        Rect(0.5, 0.5, 0.5001, 0.5001),
    ])
    def test_matches_server_search(self, multi_issue, query):
        sim, sh, server, engine, stats = make_byte_stack(
            multi_issue=multi_issue
        )

        def client():
            matches = yield from engine.search(query)
            return matches

        p = sim.process(client())
        sim.run()
        expected = sorted(server.tree.search(query).data_ids)
        assert sorted(i for _r, i in p.value) == expected

    def test_zero_server_cpu(self):
        sim, sh, server, engine, stats = make_byte_stack()

        def client():
            for _ in range(15):
                yield from engine.search(Rect(0.2, 0.2, 0.5, 0.5))

        sim.process(client())
        sim.run()
        assert sh.cpu.total_work_seconds == 0.0
        assert server.byte_target.reads > 0

    def test_real_version_validation_triggers_retries(self):
        sim, sh, server, engine, stats = make_byte_stack()
        rng = random.Random(5)

        def writer():
            for i in range(400):
                yield from server.execute_insert(
                    Rect(0.4, 0.4, 0.4001, 0.4001), 10**7 + i)
                yield sim.timeout(rng.uniform(0, 3e-6))

        def reader():
            for _ in range(200):
                yield from engine.search(Rect(0.39, 0.39, 0.42, 0.42))
                yield sim.timeout(rng.uniform(0, 5e-6))

        sim.process(writer())
        sim.process(reader())
        sim.run()
        assert stats.torn_retries > 0
        assert server.byte_target.torn_reads > 0

    def test_search_correct_despite_concurrent_inserts(self):
        sim, sh, server, engine, stats = make_byte_stack(n_items=600)
        rng = random.Random(6)
        errors = []
        baseline = len(server.tree.search(Rect(0, 0, 0.3, 0.3)).matches)

        def writer():
            # inserts far away from the query region
            for i in range(150):
                x = rng.uniform(0.7, 0.98)
                yield from server.execute_insert(
                    Rect(x, x, x + 0.001, x + 0.001), 10**8 + i)
                yield sim.timeout(rng.uniform(0, 4e-6))

        def reader():
            for _ in range(60):
                matches = yield from engine.search(Rect(0, 0, 0.3, 0.3))
                if len(matches) != baseline:
                    errors.append(len(matches))
                yield sim.timeout(rng.uniform(0, 6e-6))

        sim.process(writer())
        sim.process(reader())
        sim.run()
        assert errors == []

    def test_byte_and_view_modes_agree(self):
        query = Rect(0.25, 0.25, 0.55, 0.55)
        results = {}
        for byte_mode in (False, True):
            sim = Simulator()
            net = Network(sim, IB_100G)
            server_host = Host(sim, "server", IB_100G, cores=4)
            net.attach_server(server_host)
            server = RTreeServer(sim, server_host,
                                 uniform_dataset(800, seed=22),
                                 max_entries=16, byte_mode=byte_mode)
            client_host = Host(sim, "client", IB_100G, cores=2)
            qp, _ = connect(sim, net, client_host, server_host)
            engine = OffloadEngine(sim, qp, server.offload_descriptor(),
                                   server.costs, ClientStats())

            def client():
                matches = yield from engine.search(query)
                return matches

            p = sim.process(client())
            sim.run()
            results[byte_mode] = sorted(i for _r, i in p.value)
        assert results[False] == results[True]
