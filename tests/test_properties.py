"""Cross-cutting property-based tests on core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.msg import (
    MSG_HEADER_SIZE,
    RingBuffer,
    SearchRequest,
    message_size,
)
from repro.rtree import Rect, RStarTree, bulk_load
from repro.sim import Simulator


class _SizedMsg:
    """A message with an arbitrary payload size."""

    def __init__(self, tag, size):
        self.tag = tag
        self._size = size

    def payload_size(self):
        return self._size


class TestRingBufferProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 2000), min_size=1, max_size=60),
           st.integers(2100, 8192))
    def test_fifo_and_byte_conservation(self, sizes, capacity):
        """Any message-size sequence: FIFO order holds, all space returns."""
        sim = Simulator()
        ring = RingBuffer(sim, capacity=capacity)
        received = []

        def sender():
            for i, size in enumerate(sizes):
                msg = _SizedMsg(i, size)
                yield from ring.reserve(msg)
                ring.deposit(msg)

        def receiver():
            for _ in sizes:
                msg = yield ring.consume()
                received.append(msg.tag)

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert received == list(range(len(sizes)))
        assert ring.free_bytes == capacity
        assert ring.bytes_sent == sum(s + MSG_HEADER_SIZE for s in sizes)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 20), st.integers(0, 10**6))
    def test_backpressure_never_loses_messages(self, n_messages, seed):
        """A ring that fits ~2 messages still delivers everything."""
        sim = Simulator()
        msg_footprint = message_size(SearchRequest(0, Rect(0, 0, 1, 1)))
        ring = RingBuffer(sim, capacity=2 * msg_footprint + 1)
        rng = random.Random(seed)
        received = []

        def sender():
            for i in range(n_messages):
                msg = SearchRequest(i, Rect(0, 0, 1, 1))
                yield from ring.reserve(msg)
                ring.deposit(msg)

        def receiver():
            for _ in range(n_messages):
                yield sim.timeout(rng.uniform(0, 5e-6))
                msg = yield ring.consume()
                received.append(msg.req_id)

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert received == list(range(n_messages))


class TestTreeEquivalenceProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10**6), st.integers(10, 300))
    def test_str_and_rstar_answer_identically(self, seed, n):
        """Bulk-loaded and incrementally built trees are interchangeable."""
        rng = random.Random(seed)
        items = []
        for i in range(n):
            x, y = rng.uniform(0, 0.99), rng.uniform(0, 0.99)
            s = rng.uniform(0, 0.01)
            items.append((Rect(x, y, x + s, y + s), i))
        str_tree = bulk_load(items, max_entries=8)
        rstar = RStarTree(max_entries=8)
        for rect, i in items:
            rstar.insert(rect, i)
        for _ in range(10):
            qx, qy = rng.uniform(0, 0.9), rng.uniform(0, 0.9)
            qs = rng.uniform(0, 0.2)
            query = Rect(qx, qy, qx + qs, qy + qs)
            assert (sorted(str_tree.search(query).data_ids)
                    == sorted(rstar.search(query).data_ids))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10**6))
    def test_search_is_stable_under_reinsertion(self, seed):
        """Deleting and re-inserting the same data leaves answers intact."""
        rng = random.Random(seed)
        items = []
        for i in range(80):
            x, y = rng.uniform(0, 0.99), rng.uniform(0, 0.99)
            s = rng.uniform(0, 0.01)
            items.append((Rect(x, y, x + s, y + s), i))
        tree = RStarTree(max_entries=6)
        for rect, i in items:
            tree.insert(rect, i)
        query = Rect(0, 0, 1, 1)
        before = sorted(tree.search(query).data_ids)
        for rect, i in items[:40]:
            assert tree.delete(rect, i).ok
        for rect, i in items[:40]:
            tree.insert(rect, i)
        tree.validate()
        assert sorted(tree.search(query).data_ids) == before


class TestSimulatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 100, allow_nan=False),
                              st.integers(0, 999)),
                    min_size=1, max_size=50))
    def test_events_fire_in_time_order(self, schedule):
        sim = Simulator()
        fired = []

        def waiter(delay, tag):
            yield sim.timeout(delay)
            fired.append((sim.now, tag))

        for delay, tag in schedule:
            sim.process(waiter(delay, tag))
        sim.run()
        times = [t for t, _tag in fired]
        assert times == sorted(times)
        assert len(fired) == len(schedule)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_simulation_is_deterministic(self, seed):
        """Same seed, same program -> bit-identical event history."""
        def run_once():
            sim = Simulator()
            rng = random.Random(seed)
            log = []

            def worker(tag):
                for _ in range(5):
                    yield sim.timeout(rng.uniform(0, 1))
                    log.append((sim.now, tag))

            for tag in range(4):
                sim.process(worker(tag))
            sim.run()
            return log

        assert run_once() == run_once()


def _rects(draw_floats):
    """Strategy for valid Rects from two corner points."""
    return st.builds(
        lambda x1, y1, x2, y2: Rect(min(x1, x2), min(y1, y2),
                                    max(x1, x2), max(y1, y2)),
        draw_floats, draw_floats, draw_floats, draw_floats,
    )


class TestFlatScanEquivalence:
    """The flat-coordinate scan kernels must be byte-identical to the
    per-entry ``Rect.intersects`` reference paths."""

    _coord = st.floats(0.0, 1.0, allow_nan=False, width=32)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(_rects(_coord), min_size=1, max_size=120),
        st.lists(st.integers(0, 119), max_size=30),
        st.lists(_rects(_coord), min_size=1, max_size=8),
    )
    def test_tree_search_matches_rect_intersects_oracle(
        self, rects, delete_picks, queries
    ):
        """Random insert/delete schedules, random queries: the optimized
        ``search`` equals the pre-cache ``search_via_rects`` loop."""
        from repro.rtree import RStarTree

        tree = RStarTree(max_entries=8)
        live = []
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
            live.append((rect, i))
        for pick in delete_picks:
            if not live:
                break
            rect, data_id = live.pop(pick % len(live))
            tree.delete(rect, data_id)
        for query in queries:
            fast = tree.search(query)
            oracle = tree.search_via_rects(query)
            assert fast.matches == oracle.matches
            assert fast.visited_chunks == oracle.visited_chunks
            assert fast.nodes_visited == oracle.nodes_visited
            assert fast.leaf_nodes_visited == oracle.leaf_nodes_visited

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(_rects(_coord), min_size=1, max_size=64),
        _rects(_coord),
    )
    def test_node_view_flat_scan_matches_intersects(self, rects, query):
        """NodeView.intersecting_refs/entries equal the naive per-entry
        ``Rect.intersects`` scan of the same snapshot."""
        from repro.rtree.serialize import NodeView

        entries = tuple((rect, i) for i, rect in enumerate(rects))
        view = NodeView(level=0, chunk_id=0, entries=entries,
                        version=1, torn=False)
        naive_entries = [e for e in entries if e[0].intersects(query)]
        naive_refs = [ref for rect, ref in entries
                      if rect.intersects(query)]
        assert view.intersecting_entries(query) == naive_entries
        assert view.intersecting_refs(query) == naive_refs

    @settings(max_examples=20, deadline=None)
    @given(st.lists(_rects(_coord), min_size=1, max_size=500),
           _rects(_coord))
    def test_bulk_loaded_tree_search_matches_oracle(self, rects, query):
        tree = bulk_load([(rect, i) for i, rect in enumerate(rects)])
        fast = tree.search(query)
        oracle = tree.search_via_rects(query)
        assert fast.matches == oracle.matches
        assert fast.visited_chunks == oracle.visited_chunks


class TestBatchKernelEquivalence:
    """The vectorized scan kernels and the cross-query batch engine
    must be bit-identical to sequential search under every kernel."""

    _coord = st.floats(0.0, 1.0, allow_nan=False, width=32)

    @staticmethod
    def _kernels():
        from repro.rtree.batch import HAVE_NUMPY

        return ("python", "auto", "numpy") if HAVE_NUMPY else ("python",)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(_rects(_coord), min_size=1, max_size=250),
        st.lists(_rects(_coord), min_size=0, max_size=13),
        st.booleans(),
    )
    def test_batch_engine_equals_sequential_oracle(
        self, rects, queries, duplicate_first
    ):
        """Random batch sizes (including empty) and overlapping query
        groups: per-query batched results — matches in order, visited
        chunks, visit counters — equal ``search_via_rects``."""
        from repro.rtree import BatchSearchEngine, forced_kernel

        if duplicate_first and queries:
            queries = queries + [queries[0]]  # identical windows share
        tree = bulk_load([(rect, i) for i, rect in enumerate(rects)])
        for kernel in self._kernels():
            with forced_kernel(kernel):
                results = BatchSearchEngine(tree).search_batch(queries)
            assert len(results) == len(queries)
            for query, got in zip(queries, results):
                oracle = tree.search_via_rects(query)
                assert got.matches == oracle.matches, kernel
                assert got.visited_chunks == oracle.visited_chunks, kernel
                assert got.nodes_visited == oracle.nodes_visited, kernel
                assert (got.leaf_nodes_visited
                        == oracle.leaf_nodes_visited), kernel

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(_rects(_coord), min_size=1, max_size=300),
        _rects(_coord),
    )
    def test_vectorized_single_scan_equals_python_loop(self, rects, query):
        """The forced-numpy single-query broadcast and the fallback loop
        agree with the oracle on the same tree."""
        from repro.rtree import forced_kernel
        from repro.rtree.batch import HAVE_NUMPY

        tree = bulk_load([(rect, i) for i, rect in enumerate(rects)])
        oracle = tree.search_via_rects(query)
        kernels = ("python", "numpy") if HAVE_NUMPY else ("python",)
        for kernel in kernels:
            with forced_kernel(kernel):
                got = tree.search(query)
            assert got.matches == oracle.matches, kernel
            assert got.visited_chunks == oracle.visited_chunks, kernel

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(_rects(_coord), min_size=1, max_size=200),
        st.floats(0.0, 1.0, allow_nan=False, width=32),
        st.floats(0.0, 1.0, allow_nan=False, width=32),
    )
    def test_nearest_agrees_across_kernels(self, rects, x, y):
        """kNN MINDIST pruning returns the same neighbor under the
        numpy and python kernels."""
        from repro.rtree import forced_kernel
        from repro.rtree.batch import HAVE_NUMPY

        tree = bulk_load([(rect, i) for i, rect in enumerate(rects)])
        answers = []
        kernels = ("python", "numpy") if HAVE_NUMPY else ("python",)
        for kernel in kernels:
            with forced_kernel(kernel):
                answers.append(tree.nearest(x, y))
        assert all(a == answers[0] for a in answers)
