"""The chaos harness: scenario invariants and deterministic replay.

The fast subset here runs a reduced load; the full default-sized sweep is
``@pytest.mark.chaos`` (excluded from tier-1, run via ``pytest -m chaos``
or ``python -m repro chaos``).
"""

import pytest

from repro.faults import SCENARIOS, ChaosConfig, run_scenario

#: Reduced load for tier-1: same structure, ~4x faster.
FAST = dict(n_clients=2, requests_per_client=120, dataset_size=1000)


class TestHarness:
    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            run_scenario("meteor-strike")

    def test_registry_is_populated(self):
        assert len(SCENARIOS) >= 5
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name
            assert scenario.summary

    def test_overrides_reach_the_config(self):
        report = run_scenario("latency-spike", requests_per_client=40,
                              n_clients=2, dataset_size=500)
        assert report.issued == 80

    def test_report_shape(self):
        report = run_scenario("link-loss", **FAST)
        assert report.name == "link-loss"
        assert report.invariants  # at least the shared five
        names = [n for n, _ok, _d in report.invariants]
        assert "completed" in names
        assert "oracle-match" in names
        assert "exactly-once" in names
        assert "bounded-retries" in names
        assert "throughput-recovered" in names
        assert "fault-fired:packets-dropped" in names
        assert report.row()
        assert report.header()
        assert len(report.describe()) == len(report.invariants)
        assert len(report.fingerprint()) == 16


class TestInvariantsFast:
    @pytest.mark.parametrize("name", ["worker-crash", "write-storm",
                                      "heartbeat-blackout", "flash-crowd"])
    def test_scenario_passes_reduced(self, name):
        report = run_scenario(name, **FAST)
        assert report.ok, report.failures

    def test_faults_actually_fired(self):
        report = run_scenario("worker-crash", **FAST)
        assert report.counters["workers-crashed"] >= 1
        assert report.counters["workers-restarted"] >= 1
        assert report.completed == report.issued


class TestDeterministicReplay:
    def test_same_seed_same_fingerprint(self):
        first = run_scenario("worker-crash", seed=3, **FAST)
        second = run_scenario("worker-crash", seed=3, **FAST)
        assert first.ok and second.ok
        assert first.fingerprint() == second.fingerprint()
        assert first.invariants == second.invariants
        assert first.counters == second.counters

    def test_different_seed_different_run(self):
        a = run_scenario("link-loss", seed=1, **FAST)
        b = run_scenario("link-loss", seed=2, **FAST)
        # The workloads differ, so the outcome digest must differ.
        assert a.fingerprint() != b.fingerprint()

    def test_flash_crowd_fingerprint_pinned(self):
        # The scenario pins its own deployment shape via tweaks, so the
        # digest is stable even under the FAST sizing overrides.
        report = run_scenario("flash-crowd", **FAST)
        assert report.ok, report.failures
        assert report.fingerprint() == "95d90656ca53e494"

    def test_config_object_and_kwargs_agree(self):
        via_kwargs = run_scenario("slow-client", seed=5, **FAST)
        via_config = run_scenario("slow-client", seed=5,
                                  config=ChaosConfig(**FAST))
        assert via_kwargs.fingerprint() == via_config.fingerprint()


@pytest.mark.chaos
class TestFullSweep:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_green_at_default_size(self, name):
        report = run_scenario(name)
        assert report.ok, report.failures

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_combo_is_green_across_seeds(self, seed):
        report = run_scenario("chaos-combo", seed=seed)
        assert report.ok, report.failures
