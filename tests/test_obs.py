"""Unit tests for the observability layer: registry, traces, export."""

import json
import math
import random

import pytest

from repro.obs import (
    SCHEMA,
    Counter,
    Gauge,
    Histogram,
    LatencyView,
    MetricsRegistry,
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    WindowSampler,
    dumps,
    load_metrics_json,
    snapshot_document,
    write_metrics_json,
)
from repro.sim import Simulator
from repro.sim.monitor import LatencyRecorder


class TestCounter:
    def test_behaves_like_int(self):
        c = Counter("x")
        c += 1
        c += 2
        assert c == 3
        assert c > 2
        assert c < 4
        assert c + 1 == 4
        assert 10 - c == 7
        assert c * 2 == 6
        assert c / 2 == 1.5
        assert int(c) == 3
        assert float(c) == 3.0
        assert bool(c)
        assert f"{c:>5}" == "    3"
        assert sum([c, c]) == 6

    def test_iadd_keeps_identity(self):
        """`stats.field += 1` must keep the registry-adopted object."""
        c = Counter("x")
        before = id(c)
        c += 5
        assert id(c) == before
        assert c.value == 5

    def test_inc_rejects_negative(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_snapshot(self):
        c = Counter("x")
        c.inc(7)
        assert c.snapshot() == {"type": "counter", "value": 7}


class TestGauge:
    def test_set_and_get(self):
        g = Gauge("g")
        g.set(0.5)
        assert g.get() == 0.5
        assert g.snapshot() == {"type": "gauge", "value": 0.5}

    def test_callback_gauge_is_live(self):
        state = {"v": 1.0}
        g = Gauge("g", fn=lambda: state["v"])
        assert g.get() == 1.0
        state["v"] = 2.0
        assert g.get() == 2.0
        with pytest.raises(ValueError):
            g.set(3.0)


class TestHistogram:
    def test_percentiles_close_to_exact(self):
        """HDR buckets promise ~3% relative error against exact ranks."""
        rng = random.Random(42)
        samples = [rng.lognormvariate(3.0, 1.0) for _ in range(20_000)]
        h = Histogram("h", unit="us")
        for s in samples:
            h.record(s)
        exact = sorted(samples)
        for p in (50, 95, 99):
            want = exact[min(len(exact) - 1,
                             int(p / 100 * len(exact)))]
            got = h.percentile(p)
            assert abs(got - want) / want < 0.05

    def test_bounded_memory(self):
        h = Histogram("h")
        for i in range(1, 100_001):
            h.record(i * 1e-6)
        assert h.count == 100_000
        # log-linear cells: a few hundred regardless of sample count
        assert h.n_buckets < 600

    def test_empty_histogram(self):
        h = Histogram("h")
        assert math.isnan(h.percentile(50))
        assert math.isnan(h.mean)
        snap = h.snapshot()
        assert snap["count"] == 0

    def test_extremes_are_exact(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 3.0

    def test_zero_and_negative_bucket(self):
        h = Histogram("h")
        h.record(0.0)
        h.record(5.0)
        assert h.count == 2
        assert h.minimum == 0.0

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)


class TestLatencyView:
    def test_rescales_recorder(self):
        rec = LatencyRecorder()
        for v in (1e-6, 2e-6, 3e-6):
            rec.record(v)
        view = LatencyView(rec, scale=1e6, unit="us")
        snap = view.snapshot()
        assert snap["count"] == 3
        assert snap["mean"] == pytest.approx(2.0)
        assert snap["min"] == pytest.approx(1.0)
        assert snap["max"] == pytest.approx(3.0)
        assert snap["unit"] == "us"


class TestWindowSampler:
    def test_samples_on_sim_clock(self):
        sim = Simulator()
        sampler = WindowSampler(sim, lambda: sim.now * 10.0,
                                interval=1e-3).start()
        sim.run(until=5.5e-3)
        times = [t for t, _v in sampler.points]
        assert times == pytest.approx([1e-3, 2e-3, 3e-3, 4e-3, 5e-3])

    def test_while_fn_stops_sampling(self):
        sim = Simulator()
        sampler = WindowSampler(sim, lambda: 1.0, interval=1e-3,
                                while_fn=lambda: sim.now < 3e-3).start()
        sim.run(until=0.1)
        assert len(sampler.points) <= 4

    def test_bounded_points(self):
        sim = Simulator()
        sampler = WindowSampler(sim, lambda: 0.0, interval=1e-4,
                                max_points=16).start()
        sim.run(until=0.1)
        assert len(sampler.points) == 16

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            WindowSampler(Simulator(), lambda: 0.0, interval=0.0)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        m = MetricsRegistry()
        c1 = m.counter("a.b")
        c2 = m.counter("a.b")
        assert c1 is c2
        assert len(m) == 1

    def test_kind_collision_rejected(self):
        m = MetricsRegistry()
        m.counter("a")
        with pytest.raises(ValueError):
            m.gauge("a")

    def test_adopt_external_counter(self):
        m = MetricsRegistry()
        c = Counter()
        m.adopt("x.y", c)
        c += 3
        assert m.snapshot()["x.y"]["value"] == 3
        assert c.name == "x.y"  # adoption names anonymous metrics

    def test_adopt_same_object_twice_ok(self):
        m = MetricsRegistry()
        c = Counter("c")
        m.adopt("c", c)
        m.adopt("c", c)
        with pytest.raises(ValueError):
            m.adopt("c", Counter("other"))

    def test_adopt_requires_snapshot(self):
        with pytest.raises(TypeError):
            MetricsRegistry().adopt("bad", object())

    def test_expose_pull_gauge(self):
        m = MetricsRegistry()
        state = {"v": 0}
        m.expose("live", lambda: state["v"])
        state["v"] = 9
        assert m.snapshot()["live"]["value"] == 9

    def test_snapshot_covers_everything(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.gauge("g").set(1.5)
        m.histogram("h", unit="us").record(2.0)
        snap = m.snapshot()
        assert set(snap) == {"c", "g", "h"}
        assert snap["h"]["type"] == "histogram"


class TestTracer:
    def make(self, **kw):
        sim = Simulator()
        return sim, Tracer(sim, **kw)

    def test_span_records_begin_annotate_end(self):
        sim, tracer = self.make()
        with tracer.span("offload", "search", op_id=7) as span:
            span.annotate("issue", level=2)
        events = tracer.events
        assert [e.name for e in events] == ["begin", "issue", "end"]
        assert events[0].attrs["op_id"] == 7
        assert events[-1].attrs["elapsed"] == 0.0

    def test_disabled_component_returns_null_span(self):
        sim, tracer = self.make(components=("adaptive",))
        assert tracer.span("offload", "search") is NULL_SPAN
        assert tracer.span("adaptive", "x") is not NULL_SPAN

    def test_enable_disable_toggles(self):
        sim, tracer = self.make()
        assert tracer.is_enabled("anything")
        tracer.disable()
        assert not tracer.is_enabled("offload")
        tracer.enable("offload")
        assert tracer.is_enabled("offload")
        assert not tracer.is_enabled("adaptive")

    def test_bounded_ring_counts_drops(self):
        sim, tracer = self.make(max_events=10)
        for i in range(25):
            tracer.span("c", f"op{i}")  # one "begin" event each
        assert len(tracer.events) == 10
        assert tracer.total_events == 25
        assert tracer.dropped_events == 15

    def test_spans_grouping(self):
        sim, tracer = self.make()
        s1 = tracer.span("c", "a")
        s2 = tracer.span("c", "b")
        s1.annotate("phase")
        s1.end()
        s2.end()
        grouped = tracer.spans()
        assert len(grouped) == 2
        assert [e.name for e in grouped[s1.span_id]] == \
            ["begin", "phase", "end"]

    def test_end_is_idempotent(self):
        sim, tracer = self.make()
        span = tracer.span("c", "a")
        span.end()
        span.end()
        assert [e.name for e in tracer.events].count("end") == 1

    def test_exception_annotates_error(self):
        sim, tracer = self.make()
        with pytest.raises(RuntimeError):
            with tracer.span("c", "a"):
                raise RuntimeError("boom")
        assert "error" in tracer.events[-1].attrs

    def test_null_tracer_is_free(self):
        span = NULL_TRACER.span("c", "a")
        assert span is NULL_SPAN
        span.annotate("x").end()
        assert NULL_TRACER.snapshot()["total_events"] == 0

    def test_max_events_validated(self):
        with pytest.raises(ValueError):
            Tracer(Simulator(), max_events=0)


class TestExport:
    def make_registry(self):
        m = MetricsRegistry()
        m.counter("requests").inc(5)
        m.gauge("util").set(0.4)
        h = m.histogram("lat", unit="us")
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        return m

    def test_document_shape(self):
        doc = snapshot_document(self.make_registry(),
                                meta={"scheme": "catfish"})
        assert doc["schema"] == SCHEMA
        assert doc["meta"]["scheme"] == "catfish"
        assert doc["metrics"]["requests"]["value"] == 5
        assert "trace" not in doc

    def test_trace_included_when_nonempty(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.span("c", "op").end()
        doc = snapshot_document(self.make_registry(), tracer=tracer)
        assert doc["trace"]["total_events"] == 2

    def test_nan_becomes_null(self):
        m = MetricsRegistry()
        m.histogram("empty")  # all-NaN percentiles
        text = dumps(snapshot_document(m))
        parsed = json.loads(text)  # must be strict JSON
        assert parsed["metrics"]["empty"]["p99"] is None

    def test_counters_serialize_as_ints(self):
        m = MetricsRegistry()
        m.adopt("c", Counter("c", value=3))
        parsed = json.loads(dumps(snapshot_document(m)))
        assert parsed["metrics"]["c"]["value"] == 3

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        doc = snapshot_document(self.make_registry(), meta={"seed": 0})
        write_metrics_json(path, doc)
        loaded = load_metrics_json(path)
        assert loaded["schema"] == SCHEMA
        assert loaded["metrics"]["lat"]["count"] == 3


class TestEndToEnd:
    def test_run_result_carries_metrics_document(self):
        from repro import ExperimentConfig, run_experiment
        result = run_experiment(ExperimentConfig(
            scheme="catfish", n_clients=2, requests_per_client=20,
            dataset_size=2_000, trace=True,
        ))
        doc = result.metrics
        assert doc["schema"] == SCHEMA
        assert doc["metrics"]["client.requests_sent"]["value"] == 40
        assert doc["metrics"]["client.latency_us"]["count"] == 40
        assert doc["metrics"]["client.latency_us"]["p99"] > 0
        assert doc["trace"]["total_events"] > 0
        # strict JSON end to end
        json.loads(dumps(doc))
