"""Tests for the update operation (move/resize a rectangle)."""

import pytest

from repro.client import ClientStats
from repro.client.base import OP_SEARCH, OP_UPDATE, Request
from repro.client.fm_client import FmSession
from repro.hw import Host
from repro.net import IB_100G, Network
from repro.rtree import Rect
from repro.server import EVENT, FastMessagingServer, RTreeServer
from repro.sim import Simulator
from repro.workloads import uniform_dataset


def make_stack(n_items=500):
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=4)
    net.attach_server(server_host)
    items = uniform_dataset(n_items, seed=2)
    server = RTreeServer(sim, server_host, items, max_entries=16)
    fm_server = FastMessagingServer(sim, server, net, mode=EVENT)
    client_host = Host(sim, "client", IB_100G, cores=2)
    conn = fm_server.open_connection(client_host)
    fm = FmSession(sim, conn, 0, ClientStats())
    return sim, server, fm, items


class TestRequestValidation:
    def test_update_needs_new_rect(self):
        with pytest.raises(ValueError):
            Request(OP_UPDATE, Rect(0, 0, 1, 1), data_id=1)

    def test_update_needs_data_id(self):
        with pytest.raises(ValueError):
            Request(OP_UPDATE, Rect(0, 0, 1, 1),
                    new_rect=Rect(0, 0, 2, 2))

    def test_valid_update(self):
        r = Request(OP_UPDATE, Rect(0, 0, 1, 1), data_id=1,
                    new_rect=Rect(1, 1, 2, 2))
        assert r.new_rect == Rect(1, 1, 2, 2)


class TestServerUpdate:
    def test_update_moves_rectangle(self):
        sim, server, fm, items = make_stack()
        old_rect, data_id = items[0]
        new_rect = Rect(0.91, 0.91, 0.92, 0.92)

        def scenario():
            ok = yield from server.execute_update(old_rect, new_rect,
                                                  data_id)
            here = yield from server.execute_search(new_rect)
            there = yield from server.execute_search(old_rect)
            return ok, here, there

        p = sim.process(scenario())
        sim.run()
        ok, here, there = p.value
        assert ok
        assert data_id in [i for _r, i in here]
        assert data_id not in [i for _r, i in there]
        assert server.updates_served == 1
        server.tree.validate()
        assert server.tree.size == 500  # size unchanged

    def test_update_missing_returns_false(self):
        sim, server, fm, items = make_stack()

        def scenario():
            ok = yield from server.execute_update(
                Rect(0.5, 0.5, 0.6, 0.6), Rect(0.7, 0.7, 0.8, 0.8),
                987654321,
            )
            return ok

        p = sim.process(scenario())
        sim.run()
        assert p.value is False
        assert server.updates_served == 0
        assert server.tree.size == 500

    def test_update_opens_write_window(self):
        sim, server, fm, items = make_stack()
        old_rect, data_id = items[0]
        observed = []

        def updater():
            yield from server.execute_update(
                old_rect, Rect(0.8, 0.8, 0.81, 0.81), data_id)

        def prober():
            for _ in range(4000):
                yield sim.timeout(0.05e-6)
                if any(n.active_writers for n in server.tree.nodes.values()):
                    observed.append(True)
                    return

        sim.process(updater())
        sim.process(prober())
        sim.run()
        assert observed == [True]


class TestClientUpdate:
    def test_fm_update_round_trip(self):
        sim, server, fm, items = make_stack()
        old_rect, data_id = items[3]
        new_rect = Rect(0.95, 0.95, 0.96, 0.96)

        def client():
            yield from fm.execute(Request(
                OP_UPDATE, old_rect, data_id=data_id, new_rect=new_rect))
            found = yield from fm.execute(Request(OP_SEARCH, new_rect))
            return found

        p = sim.process(client())
        sim.run()
        assert data_id in [i for _r, i in p.value]

    def test_tcp_update_round_trip(self):
        from repro.client.tcp_client import TcpSession
        from repro.net import ETH_1G
        from repro.server import TcpRTreeServer
        from repro.transport import TcpConnection
        sim = Simulator()
        net = Network(sim, ETH_1G)
        server_host = Host(sim, "server", ETH_1G, cores=4)
        net.attach_server(server_host)
        items = uniform_dataset(200, seed=3)
        server = RTreeServer(sim, server_host, items, max_entries=16)
        tcp_server = TcpRTreeServer(sim, server)
        client_host = Host(sim, "client", ETH_1G, cores=2)
        conn = TcpConnection(sim, net, client_host, server_host)
        tcp_server.accept(conn)
        session = TcpSession(sim, conn, 0, ClientStats())
        old_rect, data_id = items[7]
        new_rect = Rect(0.88, 0.88, 0.89, 0.89)

        def client():
            yield from session.execute(Request(
                OP_UPDATE, old_rect, data_id=data_id, new_rect=new_rect))
            found = yield from session.execute(Request(OP_SEARCH, new_rect))
            return found

        p = sim.process(client())
        sim.run()
        assert data_id in [i for _r, i in p.value]

    def test_catfish_routes_update_to_server(self):
        from repro.client import AdaptiveParams, CatfishSession, OffloadEngine
        sim, server, fm, items = make_stack()
        engine = OffloadEngine(sim, fm.conn.client_end,
                               server.offload_descriptor(), server.costs,
                               fm.stats)
        session = CatfishSession(sim, fm, engine, fm.stats,
                                 params=AdaptiveParams(Inv=0.1e-3))
        fm.mailbox.value = 1.0  # even "busy" must not offload a write
        old_rect, data_id = items[9]

        def client():
            yield sim.timeout(0.2e-3)
            yield from session.execute(Request(
                OP_UPDATE, old_rect, data_id=data_id,
                new_rect=Rect(0.7, 0.7, 0.71, 0.71)))

        done = sim.process(client())
        sim.run_until_triggered(done)
        assert server.updates_served == 1
        assert fm.stats.offloaded_requests == 0
