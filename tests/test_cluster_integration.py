"""Integration tests: full experiments across every scheme and fabric."""

import math

import pytest

from repro import AdaptiveParams, ExperimentConfig, run_experiment
from repro.cluster import SCHEMES, scheme_spec

SMALL = dict(n_clients=4, requests_per_client=20, dataset_size=2000,
             max_entries=16, server_cores=4)


def small_config(**overrides):
    params = dict(SMALL)
    params.update(overrides)
    return ExperimentConfig(**params)


class TestSchemes:
    @pytest.mark.parametrize("scheme,fabric", [
        ("tcp", "eth-1g"),
        ("tcp", "eth-40g"),
        ("fast-messaging", "ib-100g"),
        ("fast-messaging-event", "ib-100g"),
        ("rdma-offloading", "ib-100g"),
        ("rdma-offloading-multi", "ib-100g"),
        ("catfish", "ib-100g"),
        ("catfish-polling", "ib-100g"),
        ("catfish-single-issue", "ib-100g"),
    ])
    def test_every_scheme_completes_all_requests(self, scheme, fabric):
        result = run_experiment(small_config(scheme=scheme, fabric=fabric))
        assert result.total_requests == 4 * 20
        assert result.throughput_kops > 0
        assert result.mean_latency_us > 0
        assert result.p99_latency_us >= result.p50_latency_us

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            run_experiment(small_config(scheme="quic"))

    def test_rdma_scheme_on_ethernet_rejected(self):
        with pytest.raises(ValueError):
            run_experiment(small_config(scheme="catfish", fabric="eth-1g"))

    def test_scheme_registry_contents(self):
        assert set(SCHEMES) >= {
            "tcp", "fast-messaging", "rdma-offloading", "catfish",
        }
        assert scheme_spec("catfish").multi_issue
        assert not scheme_spec("rdma-offloading").multi_issue


class TestConfigValidation:
    def test_bad_client_count(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_clients=0)

    def test_bad_request_count(self):
        with pytest.raises(ValueError):
            ExperimentConfig(requests_per_client=0)

    def test_bad_workload(self):
        with pytest.raises(ValueError):
            ExperimentConfig(workload_kind="scan")

    def test_total_requests(self):
        config = ExperimentConfig(n_clients=3, requests_per_client=7)
        assert config.total_requests == 21


class TestBehaviour:
    def test_offloading_uses_zero_server_cpu_for_searches(self):
        result = run_experiment(small_config(scheme="rdma-offloading",
                                             fabric="ib-100g"))
        assert result.offload_fraction == 1.0
        assert result.searches_served_by_server == 0
        assert result.server_cpu_utilization == 0.0

    def test_fast_messaging_never_offloads(self):
        result = run_experiment(small_config(scheme="fast-messaging",
                                             fabric="ib-100g"))
        assert result.offload_fraction == 0.0
        assert result.searches_served_by_server == 80

    def test_catfish_offloads_under_saturation(self):
        result = run_experiment(small_config(
            scheme="catfish",
            n_clients=24,
            requests_per_client=150,
            dataset_size=4000,
            server_cores=2,  # easy to saturate
            adaptive=AdaptiveParams(N=8, T=0.9, Inv=0.2e-3),
            heartbeat_interval=0.2e-3,
        ))
        assert result.offload_fraction > 0.05
        assert result.heartbeats_sent > 0

    def test_catfish_stays_on_fm_when_idle(self):
        result = run_experiment(small_config(
            scheme="catfish",
            n_clients=2,
            server_cores=8,
            adaptive=AdaptiveParams(N=8, T=0.95, Inv=0.2e-3),
            heartbeat_interval=0.2e-3,
        ))
        assert result.offload_fraction == 0.0

    def test_hybrid_workload_serves_inserts(self):
        result = run_experiment(small_config(
            scheme="catfish",
            workload_kind="hybrid",
            insert_fraction=0.2,
            requests_per_client=50,
        ))
        assert result.inserts_served > 0
        total = 4 * 50
        assert result.total_requests == total

    def test_hybrid_offloading_sees_torn_reads(self):
        result = run_experiment(small_config(
            scheme="rdma-offloading",
            workload_kind="hybrid",
            insert_fraction=0.4,
            n_clients=12,
            requests_per_client=120,
            dataset_size=1500,
            scale="0.01",
            seed=3,
        ))
        assert result.torn_retries > 0

    def test_reproducibility_same_seed(self):
        a = run_experiment(small_config(scheme="catfish", seed=11))
        b = run_experiment(small_config(scheme="catfish", seed=11))
        assert a.throughput_kops == b.throughput_kops
        assert a.mean_latency_us == b.mean_latency_us

    def test_different_seeds_differ(self):
        a = run_experiment(small_config(scheme="catfish", seed=11))
        b = run_experiment(small_config(scheme="catfish", seed=12))
        assert a.mean_latency_us != b.mean_latency_us

    def test_byte_mode_experiment(self):
        """Full experiment with real packed-bytes offload reads."""
        shared = dict(n_clients=6, requests_per_client=40,
                      dataset_size=2000, max_entries=16, server_cores=4,
                      seed=7)
        plain = run_experiment(ExperimentConfig(
            scheme="rdma-offloading", byte_mode=False, **shared))
        byte = run_experiment(ExperimentConfig(
            scheme="rdma-offloading", byte_mode=True, **shared))
        assert byte.total_requests == plain.total_requests
        # identical timing model: bytes vs snapshots only change fidelity
        assert byte.throughput_kops == pytest.approx(
            plain.throughput_kops, rel=0.05)
        assert byte.server_cpu_utilization == 0.0

    def test_queries_workload(self):
        from repro.workloads import generate_rea02, generate_rea02_queries
        items = generate_rea02(n=3000, subregion_objects=500, seed=2)
        queries = generate_rea02_queries(20, dataset_size=3000, seed=3)
        result = run_experiment(small_config(
            scheme="catfish",
            workload_kind="queries",
            queries=queries,
            dataset=items,
        ))
        assert result.total_requests == 80


class TestResourceShapes:
    """The paper's central observations, reproduced in miniature."""

    def test_tcp_40g_beats_1g_only_when_network_bound(self):
        shared = dict(scheme="tcp", n_clients=16, requests_per_client=30,
                      dataset_size=3000, max_entries=16, server_cores=28)
        cpu_1g = run_experiment(ExperimentConfig(
            fabric="eth-1g", scale="0.00001", **shared))
        cpu_40g = run_experiment(ExperimentConfig(
            fabric="eth-40g", scale="0.00001", **shared))
        # large responses (~67 results each) saturate the 1 GbE link
        net_1g = run_experiment(ExperimentConfig(
            fabric="eth-1g", scale="0.3", **shared))
        net_40g = run_experiment(ExperimentConfig(
            fabric="eth-40g", scale="0.3", **shared))
        # network-bound: upgrading the fabric helps a lot
        net_gain = net_40g.throughput_kops / net_1g.throughput_kops
        # CPU-bound: upgrading helps much less
        cpu_gain = cpu_40g.throughput_kops / cpu_1g.throughput_kops
        assert net_gain > cpu_gain

    def test_offloading_beats_fm_when_cpu_starved(self):
        shared = dict(fabric="ib-100g", n_clients=16,
                      requests_per_client=60, dataset_size=3000,
                      max_entries=16, server_cores=1, scale="0.00001",
                      seed=5)
        fm = run_experiment(ExperimentConfig(scheme="fast-messaging",
                                             **shared))
        offload = run_experiment(ExperimentConfig(scheme="rdma-offloading",
                                                  **shared))
        assert offload.throughput_kops > fm.throughput_kops

    def test_fm_beats_offloading_when_bandwidth_starved(self):
        # Tiny link: node fetches dwarf the response sizes.
        shared = dict(n_clients=8, requests_per_client=40,
                      dataset_size=3000, max_entries=16, server_cores=28,
                      scale="0.01", seed=6)
        from repro.net.fabric import IB_100G, PROFILES
        slow = IB_100G.scaled(name="ib-slow", bandwidth_bps=2e9)
        PROFILES["ib-slow"] = slow
        try:
            fm = run_experiment(ExperimentConfig(
                scheme="fast-messaging-event", fabric="ib-slow", **shared))
            offload = run_experiment(ExperimentConfig(
                scheme="rdma-offloading", fabric="ib-slow", **shared))
        finally:
            del PROFILES["ib-slow"]
        assert fm.throughput_kops > offload.throughput_kops
