"""Tests for the future-work extensions: predictors and the bandit."""

import random

import pytest

from repro import ExperimentConfig, run_experiment
from repro.client import (
    BanditSession,
    ClientStats,
    EwmaPredictor,
    Request,
    TrendPredictor,
    make_predictor,
    most_recent,
)
from repro.client.bandit import FAST_MESSAGING, OFFLOADING
from repro.rtree import Rect
from repro.sim import Simulator

RECT = Rect(0.1, 0.1, 0.2, 0.2)


class TestPredictors:
    def test_most_recent_is_identity(self):
        assert most_recent(0.42) == 0.42

    def test_ewma_blends(self):
        pred = EwmaPredictor(alpha=0.5)
        assert pred(1.0) == 1.0          # first reading taken as-is
        assert pred(0.0) == 0.5          # 0.5*0 + 0.5*1
        assert pred(0.0) == 0.25

    def test_ewma_damps_spikes(self):
        pred = EwmaPredictor(alpha=0.3)
        for _ in range(10):
            pred(0.2)
        spiked = pred(1.0)
        assert spiked < 0.5  # a single spike cannot cross a 0.95 threshold

    def test_ewma_validation(self):
        with pytest.raises(ValueError):
            EwmaPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaPredictor(alpha=1.5)

    def test_ewma_reset(self):
        pred = EwmaPredictor(alpha=0.5)
        pred(1.0)
        pred.reset()
        assert pred(0.4) == 0.4

    def test_trend_extrapolates_rising(self):
        pred = TrendPredictor(gain=1.0)
        assert pred(0.5) == 0.5
        assert pred(0.7) == pytest.approx(0.9)  # 0.7 + (0.7 - 0.5)

    def test_trend_extrapolates_falling(self):
        pred = TrendPredictor(gain=1.0)
        pred(0.9)
        assert pred(0.7) == pytest.approx(0.5)

    def test_trend_clamps(self):
        pred = TrendPredictor(gain=2.0)
        pred(0.5)
        assert pred(0.9) == 1.0
        pred2 = TrendPredictor(gain=2.0)
        pred2(0.5)
        assert pred2(0.1) == 0.0

    def test_trend_validation(self):
        with pytest.raises(ValueError):
            TrendPredictor(gain=-1.0)

    def test_registry(self):
        assert make_predictor("latest") is most_recent
        assert isinstance(make_predictor("ewma"), EwmaPredictor)
        assert isinstance(make_predictor("trend"), TrendPredictor)
        with pytest.raises(KeyError):
            make_predictor("oracle")

    def test_each_instantiation_is_fresh(self):
        a = make_predictor("ewma")
        b = make_predictor("ewma")
        a(1.0)
        assert b(0.2) == 0.2  # unaffected by a's state


class _FixedLatencyArm:
    """fm/engine stub with a constant latency per call."""

    def __init__(self, sim, latency):
        self.sim = sim
        self.latency = latency
        self.calls = 0

    def execute(self, request):
        self.calls += 1
        yield self.sim.timeout(self.latency)
        return []

    def search(self, rect):
        self.calls += 1
        yield self.sim.timeout(self.latency)
        return []


class TestBanditUnit:
    def _drive(self, session, sim, n):
        def proc():
            for _ in range(n):
                yield from session.execute(Request("search", RECT))

        done = sim.process(proc())
        sim.run_until_triggered(done)

    def test_validation(self):
        sim = Simulator()
        fm = _FixedLatencyArm(sim, 1e-6)
        engine = _FixedLatencyArm(sim, 1e-6)
        with pytest.raises(ValueError):
            BanditSession(sim, fm, engine, ClientStats(), epsilon=1.5)
        with pytest.raises(ValueError):
            BanditSession(sim, fm, engine, ClientStats(), alpha=0.0)

    def test_converges_to_faster_arm(self):
        sim = Simulator()
        fm = _FixedLatencyArm(sim, 100e-6)      # slow
        engine = _FixedLatencyArm(sim, 10e-6)   # fast
        session = BanditSession(sim, fm, engine, ClientStats(),
                                epsilon=0.1, rng=random.Random(1))
        self._drive(session, sim, 200)
        assert session.mode_counts[OFFLOADING] > \
            session.mode_counts[FAST_MESSAGING] * 3

    def test_converges_to_fm_when_fm_faster(self):
        sim = Simulator()
        fm = _FixedLatencyArm(sim, 10e-6)
        engine = _FixedLatencyArm(sim, 100e-6)
        session = BanditSession(sim, fm, engine, ClientStats(),
                                epsilon=0.1, rng=random.Random(2))
        self._drive(session, sim, 200)
        assert session.mode_counts[FAST_MESSAGING] > \
            session.mode_counts[OFFLOADING] * 3

    def test_explores_both_arms(self):
        sim = Simulator()
        fm = _FixedLatencyArm(sim, 10e-6)
        engine = _FixedLatencyArm(sim, 10e-6)
        session = BanditSession(sim, fm, engine, ClientStats(),
                                epsilon=0.3, rng=random.Random(3))
        self._drive(session, sim, 100)
        assert session.mode_counts[FAST_MESSAGING] > 0
        assert session.mode_counts[OFFLOADING] > 0
        assert session.explorations > 0

    def test_adapts_when_latencies_flip(self):
        sim = Simulator()
        fm = _FixedLatencyArm(sim, 10e-6)
        engine = _FixedLatencyArm(sim, 100e-6)
        session = BanditSession(sim, fm, engine, ClientStats(),
                                epsilon=0.15, alpha=0.5,
                                rng=random.Random(4))
        self._drive(session, sim, 150)
        # flip the world: fm becomes slow
        fm.latency, engine.latency = 100e-6, 10e-6
        before = dict(session.mode_counts)
        self._drive(session, sim, 300)
        offload_delta = session.mode_counts[OFFLOADING] - before[OFFLOADING]
        fm_delta = session.mode_counts[FAST_MESSAGING] - before[FAST_MESSAGING]
        assert offload_delta > fm_delta

    def test_writes_bypass_the_bandit(self):
        sim = Simulator()
        fm = _FixedLatencyArm(sim, 10e-6)
        engine = _FixedLatencyArm(sim, 1e-6)
        session = BanditSession(sim, fm, engine, ClientStats(),
                                rng=random.Random(5))

        def proc():
            for i in range(10):
                yield from session.execute(
                    Request("insert", RECT, data_id=i))

        done = sim.process(proc())
        sim.run_until_triggered(done)
        assert engine.calls == 0
        assert fm.calls == 10


class TestSchemesIntegration:
    SMALL = dict(n_clients=6, requests_per_client=40, dataset_size=2000,
                 max_entries=16, server_cores=2,
                 heartbeat_interval=0.2e-3, seed=3)

    @pytest.mark.parametrize("scheme", [
        "catfish-ewma", "catfish-trend", "catfish-bandit",
    ])
    def test_variant_schemes_run(self, scheme):
        result = run_experiment(ExperimentConfig(scheme=scheme,
                                                 **self.SMALL))
        assert result.total_requests == 6 * 40

    def test_bandit_offloads_under_saturation(self):
        result = run_experiment(ExperimentConfig(
            scheme="catfish-bandit",
            n_clients=24,
            requests_per_client=150,
            dataset_size=4000,
            max_entries=16,
            server_cores=1,
            seed=5,
        ))
        # With one server core melting, offloading wins and the bandit
        # learns to use it heavily without any heartbeats.
        assert result.offload_fraction > 0.5
        assert result.heartbeats_sent == 0
