"""Tests for the scatter-gather router: partial results, exactly-once
merge, pruning, breakers."""

import pytest

from repro.client.base import (
    OP_COUNT,
    OP_INSERT,
    OP_NEAREST,
    OP_SEARCH,
    ClientStats,
    Request,
)
from repro.client.offload_client import OffloadError
from repro.client.resilience import BreakerParams, RequestTimeoutError
from repro.rtree.geometry import Rect
from repro.shard.partition import ShardInfo, ShardMap
from repro.shard.router import (
    OFFLOAD_ERROR,
    OK,
    SKIPPED,
    TIMEOUT,
    PartialResult,
    RouterStats,
    ScatterGatherRouter,
    merge_search_replies,
)
from repro.sim.kernel import Simulator

INF = float("inf")


class StubSession:
    """A shard session stub: fixed reply (or failure) after a delay."""

    def __init__(self, sim, reply=None, fail=None, delay=1e-6):
        self.sim = sim
        self.reply = reply
        self.fail = fail
        self.delay = delay
        self.calls = 0

    def execute(self, request):
        self.calls += 1
        yield self.sim.timeout(self.delay)
        if self.fail is not None:
            raise self.fail
        if callable(self.reply):
            return self.reply(request)
        return self.reply


def two_shard_map():
    """Two shards split at x=0.5, both populated around their tile."""
    left = ShardInfo(0, Rect(-INF, -INF, 0.5, INF),
                     Rect(0.0, 0.0, 0.45, 1.0), 10)
    right = ShardInfo(1, Rect(0.5, -INF, INF, INF),
                      Rect(0.55, 0.0, 1.0, 1.0), 10)
    return ShardMap([left, right])


def drive(sim, gen):
    box = {}

    def runner():
        box["result"] = yield from gen

    sim.process(runner(), name="test-driver")
    sim.run()
    return box["result"]


def make_router(sim, sessions, shard_map=None, **kwargs):
    return ScatterGatherRouter(
        sim, shard_map or two_shard_map(), sessions,
        stats=ClientStats(), router_stats=RouterStats(), **kwargs,
    )


def matches(*ids):
    return [(Rect(0.1 * d, 0.1 * d, 0.1 * d, 0.1 * d), d) for d in ids]


class TestMergeSearchReplies:
    def test_disjoint_replies_concatenate(self):
        merged, dups = merge_search_replies([
            (0, matches(1, 2)), (1, matches(3)),
        ])
        assert [d for _r, d in merged] == [1, 2, 3]
        assert dups == 0

    def test_duplicate_ids_dropped_exactly_once(self):
        merged, dups = merge_search_replies([
            (0, matches(1, 2)), (1, matches(2, 3)), (0, matches(1)),
        ])
        assert [d for _r, d in merged] == [1, 2, 3]
        assert dups == 2


class TestScatter:
    def test_prunes_shards_whose_mbr_misses(self):
        sim = Simulator()
        sessions = [StubSession(sim, reply=matches(1)),
                    StubSession(sim, reply=matches(2))]
        router = make_router(sim, sessions)
        # Query entirely inside shard 0's MBR, away from shard 1's.
        request = Request(op=OP_SEARCH, rect=Rect(0.1, 0.1, 0.2, 0.2))
        result = drive(sim, router.execute(request))
        assert sessions[0].calls == 1
        assert sessions[1].calls == 0
        assert result.statuses == {0: OK}
        assert result.complete
        assert int(router.router_stats.shards_pruned) == 1

    def test_query_missing_every_mbr_returns_empty(self):
        sim = Simulator()
        sessions = [StubSession(sim, reply=matches(1)),
                    StubSession(sim, reply=matches(2))]
        router = make_router(sim, sessions)
        request = Request(op=OP_SEARCH, rect=Rect(5.0, 5.0, 6.0, 6.0))
        result = drive(sim, router.execute(request))
        assert result.results == []
        assert result.statuses == {}
        assert result.complete
        assert sessions[0].calls == sessions[1].calls == 0

    def test_nearest_scatters_to_all_nonempty_shards(self):
        sim = Simulator()
        sessions = [StubSession(sim, reply=matches(1)),
                    StubSession(sim, reply=matches(2))]
        router = make_router(sim, sessions)
        request = Request(op=OP_NEAREST, rect=Rect(0.1, 0.1, 0.1, 0.1), k=2)
        result = drive(sim, router.execute(request))
        assert sessions[0].calls == sessions[1].calls == 1
        assert result.complete
        # Sorted by distance to (0.1, 0.1): id 1 at 0.1, id 2 at 0.2.
        assert [d for _r, d in result.results] == [1, 2]


class TestPartialFailure:
    def test_timeout_yields_degraded_result(self):
        sim = Simulator()
        sessions = [StubSession(sim, reply=matches(1)),
                    StubSession(sim, fail=RequestTimeoutError("s1"))]
        router = make_router(sim, sessions)
        request = Request(op=OP_SEARCH, rect=Rect(0.2, 0.2, 0.8, 0.8))
        result = drive(sim, router.execute(request))
        assert result.statuses == {0: OK, 1: TIMEOUT}
        assert not result.complete
        assert result.failed_shards == [1]
        assert [d for _r, d in result.results] == [1]
        assert int(router.router_stats.shard_timeouts) == 1
        assert int(router.router_stats.partial_results) == 1

    def test_offload_error_yields_degraded_result(self):
        sim = Simulator()
        sessions = [StubSession(sim, fail=OffloadError("torn")),
                    StubSession(sim, reply=matches(2))]
        router = make_router(sim, sessions)
        request = Request(op=OP_SEARCH, rect=Rect(0.2, 0.2, 0.8, 0.8))
        result = drive(sim, router.execute(request))
        assert result.statuses == {0: OFFLOAD_ERROR, 1: OK}
        assert int(router.router_stats.shard_offload_errors) == 1

    def test_count_degrades_to_surviving_sum(self):
        sim = Simulator()
        sessions = [StubSession(sim, reply=7),
                    StubSession(sim, fail=RequestTimeoutError("s1"))]
        router = make_router(sim, sessions)
        request = Request(op=OP_COUNT, rect=Rect(0.2, 0.2, 0.8, 0.8))
        result = drive(sim, router.execute(request))
        assert result.results == 7
        assert not result.complete

    def test_breaker_skips_failing_shard(self):
        sim = Simulator()
        sessions = [StubSession(sim, reply=matches(1)),
                    StubSession(sim, fail=RequestTimeoutError("s1"))]
        params = BreakerParams(failure_threshold=1, cooldown_s=1.0,
                               cooldown_factor=2.0, max_cooldown_s=2.0)
        router = make_router(sim, sessions, breaker_params=params)
        request = Request(op=OP_SEARCH, rect=Rect(0.2, 0.2, 0.8, 0.8))
        first = drive(sim, router.execute(request))
        assert first.statuses[1] == TIMEOUT
        second = drive(sim, router.execute(request))
        assert second.statuses[1] == SKIPPED
        # The skipped shard was not even attempted the second time.
        assert sessions[1].calls == 1
        assert int(router.router_stats.shard_skips) == 1


class TestMergeSemantics:
    def test_duplicate_shard_replies_merge_exactly_once(self):
        sim = Simulator()
        # Both shards (incorrectly) report data id 2 — e.g. a reply
        # duplicated by a retransmission.  The merge must drop it.
        sessions = [StubSession(sim, reply=matches(1, 2)),
                    StubSession(sim, reply=matches(2, 3))]
        router = make_router(sim, sessions)
        request = Request(op=OP_SEARCH, rect=Rect(0.2, 0.2, 0.8, 0.8))
        result = drive(sim, router.execute(request))
        assert sorted(d for _r, d in result.results) == [1, 2, 3]
        assert result.duplicates_dropped == 1
        assert int(router.router_stats.duplicates_merged) == 1

    def test_count_sums_disjoint_shards(self):
        sim = Simulator()
        sessions = [StubSession(sim, reply=3), StubSession(sim, reply=4)]
        router = make_router(sim, sessions)
        request = Request(op=OP_COUNT, rect=Rect(0.2, 0.2, 0.8, 0.8))
        result = drive(sim, router.execute(request))
        assert result.results == 7

    def test_nearest_truncates_to_k(self):
        sim = Simulator()
        sessions = [StubSession(sim, reply=matches(1, 3)),
                    StubSession(sim, reply=matches(2, 4))]
        router = make_router(sim, sessions)
        request = Request(op=OP_NEAREST, rect=Rect(0.0, 0.0, 0.0, 0.0), k=3)
        result = drive(sim, router.execute(request))
        assert [d for _r, d in result.results] == [1, 2, 3]


class TestWrites:
    def test_insert_routes_to_owner_and_grows_map(self):
        sim = Simulator()
        sessions = [StubSession(sim, reply=True),
                    StubSession(sim, reply=True)]
        shard_map = two_shard_map()
        router = make_router(sim, sessions, shard_map=shard_map)
        # Center x=0.3 < 0.5: shard 0 owns it; rect overhangs its MBR.
        rect = Rect(0.25, 1.5, 0.35, 1.6)
        request = Request(op=OP_INSERT, rect=rect, data_id=99)
        result = drive(sim, router.execute(request))
        assert result.statuses == {0: OK}
        assert sessions[1].calls == 0
        assert shard_map[0].count == 11
        # Reads for the overhang region now scatter to shard 0.
        assert 0 in shard_map.shards_for(Rect(0.3, 1.5, 0.3, 1.5))

    def test_failed_insert_does_not_grow_map(self):
        sim = Simulator()
        sessions = [StubSession(sim, fail=RequestTimeoutError("s0")),
                    StubSession(sim, reply=True)]
        shard_map = two_shard_map()
        router = make_router(sim, sessions, shard_map=shard_map)
        request = Request(op=OP_INSERT, rect=Rect(0.2, 0.2, 0.3, 0.3),
                          data_id=99)
        result = drive(sim, router.execute(request))
        assert result.statuses == {0: TIMEOUT}
        assert not result.complete
        assert shard_map[0].count == 10


class TestRecording:
    def test_log_records_every_request(self):
        sim = Simulator()
        sessions = [StubSession(sim, reply=matches(1)),
                    StubSession(sim, reply=matches(2))]
        router = make_router(sim, sessions, record=True)
        for _ in range(3):
            request = Request(op=OP_SEARCH, rect=Rect(0.2, 0.2, 0.8, 0.8))
            drive(sim, router.execute(request))
        assert len(router.log) == 3
        indices = [index for index, _req, _res, _t in router.log]
        assert indices == [0, 1, 2]
        assert all(isinstance(res, PartialResult)
                   for _i, _req, res, _t in router.log)

    def test_session_count_must_match_map(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            make_router(sim, [StubSession(sim)])
