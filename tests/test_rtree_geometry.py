"""Unit + property tests for rectangle geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.rtree import Rect


def rect_strategy(lo=-100.0, hi=100.0):
    coord = st.floats(lo, hi, allow_nan=False, allow_infinity=False)
    return st.builds(
        lambda x1, y1, x2, y2: Rect(min(x1, x2), min(y1, y2),
                                    max(x1, x2), max(y1, y2)),
        coord, coord, coord, coord,
    )


class TestConstruction:
    def test_basic(self):
        r = Rect(0, 0, 2, 3)
        assert r.width == 2
        assert r.height == 3
        assert r.area() == 6
        assert r.margin() == 5

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_point_rect(self):
        p = Rect.point(1.5, 2.5)
        assert p.area() == 0
        assert p.center() == (1.5, 2.5)

    def test_from_center(self):
        r = Rect.from_center(5, 5, 2, 4)
        assert (r.minx, r.miny, r.maxx, r.maxy) == (4, 3, 6, 7)

    def test_from_center_negative_extent(self):
        with pytest.raises(ValueError):
            Rect.from_center(0, 0, -1, 1)

    def test_union_of_empty(self):
        with pytest.raises(ValueError):
            Rect.union_of([])

    def test_union_of_many(self):
        u = Rect.union_of([Rect(0, 0, 1, 1), Rect(2, 2, 3, 3),
                           Rect(-1, 0.5, 0, 0.6)])
        assert (u.minx, u.miny, u.maxx, u.maxy) == (-1, 0, 3, 3)


class TestPredicates:
    def test_intersects_overlapping(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(1, 1, 3, 3))

    def test_intersects_touching_edges(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_intersects_touching_corner(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 1, 2, 2))

    def test_disjoint(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(1.01, 0, 2, 1))
        assert not Rect(0, 0, 1, 1).intersects(Rect(0, 1.01, 1, 2))

    def test_contains(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains(Rect(1, 1, 2, 2))
        assert outer.contains(outer)
        assert not Rect(1, 1, 2, 2).contains(outer)

    def test_contains_point(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(0.5, 0.5)
        assert r.contains_point(1, 1)  # boundary
        assert not r.contains_point(1.1, 0.5)


class TestCombinations:
    def test_union(self):
        u = Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3))
        assert (u.minx, u.miny, u.maxx, u.maxy) == (0, 0, 3, 3)

    def test_intersection_exists(self):
        i = Rect(0, 0, 2, 2).intersection(Rect(1, 1, 3, 3))
        assert (i.minx, i.miny, i.maxx, i.maxy) == (1, 1, 2, 2)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6)) is None

    def test_overlap_area(self):
        assert Rect(0, 0, 2, 2).overlap_area(Rect(1, 1, 3, 3)) == 1.0
        assert Rect(0, 0, 1, 1).overlap_area(Rect(5, 5, 6, 6)) == 0.0

    def test_enlargement(self):
        base = Rect(0, 0, 1, 1)
        assert base.enlargement(Rect(0.2, 0.2, 0.8, 0.8)) == 0.0
        assert base.enlargement(Rect(0, 0, 2, 1)) == pytest.approx(1.0)

    def test_center_distance2(self):
        a = Rect(0, 0, 2, 2)  # center (1,1)
        b = Rect(3, 4, 5, 6)  # center (4,5)
        assert a.center_distance2(b) == pytest.approx(9 + 16)


class TestDunder:
    def test_equality_and_hash(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(0, 0, 1, 1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Rect(0, 0, 1, 2)

    def test_eq_other_type(self):
        assert Rect(0, 0, 1, 1) != "rect"

    def test_repr_is_stable(self):
        assert "Rect(" in repr(Rect(0, 0, 1, 1))


class TestProperties:
    @given(rect_strategy(), rect_strategy())
    def test_intersects_is_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rect_strategy(), rect_strategy())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a)
        assert u.contains(b)

    @given(rect_strategy(), rect_strategy())
    def test_union_is_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(rect_strategy())
    def test_self_union_is_identity(self, a):
        assert a.union(a) == a

    @given(rect_strategy(), rect_strategy())
    def test_enlargement_nonnegative(self, a, b):
        assert a.enlargement(b) >= 0

    @given(rect_strategy(), rect_strategy())
    def test_intersection_inside_both(self, a, b):
        inter = a.intersection(b)
        if inter is None:
            assert not a.intersects(b)
        else:
            assert a.contains(inter)
            assert b.contains(inter)

    @given(rect_strategy(), rect_strategy())
    def test_overlap_area_bounded(self, a, b):
        overlap = a.overlap_area(b)
        assert 0 <= overlap <= min(a.area(), b.area()) + 1e-9

    @given(rect_strategy())
    def test_contains_implies_intersects(self, a):
        assert a.intersects(a)
        assert a.contains(a)
