"""Tests for the ring buffer protocol: framing, backpressure, FIFO."""

import pytest

from repro.msg import (
    MSG_HEADER_SIZE,
    RingBuffer,
    RingBufferFullError,
    SearchRequest,
    message_size,
)
from repro.rtree import Rect
from repro.sim import Simulator

RECT = Rect(0, 0, 0.1, 0.1)


def req(i):
    return SearchRequest(i, RECT)


class TestBasicFlow:
    def test_send_receive_round_trip(self):
        sim = Simulator()
        ring = RingBuffer(sim, capacity=1024)
        got = []

        def sender():
            message = req(1)
            yield from ring.reserve(message)
            ring.deposit(message)

        def receiver():
            message = yield ring.consume()
            got.append(message.req_id)

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert got == [1]

    def test_fifo_order(self):
        sim = Simulator()
        ring = RingBuffer(sim, capacity=4096)
        got = []

        def sender():
            for i in range(5):
                message = req(i)
                yield from ring.reserve(message)
                ring.deposit(message)

        def receiver():
            for _ in range(5):
                message = yield ring.consume()
                got.append(message.req_id)

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_space_accounting(self):
        sim = Simulator()
        ring = RingBuffer(sim, capacity=1024)
        message = req(1)
        footprint = message_size(message)

        def sender():
            yield from ring.reserve(message)
            assert ring.free_bytes == 1024 - footprint
            ring.deposit(message)

        sim.process(sender())
        sim.run()
        assert ring.used_bytes == footprint  # consumed only on recv
        _, got = ring.try_consume()
        assert got is message
        assert ring.free_bytes == 1024

    def test_backpressure_blocks_until_consume(self):
        sim = Simulator()
        message = req(1)
        footprint = message_size(message)
        ring = RingBuffer(sim, capacity=footprint + MSG_HEADER_SIZE)
        times = []

        def sender():
            for i in range(2):
                m = req(i)
                yield from ring.reserve(m)
                ring.deposit(m)
                times.append(sim.now)

        def receiver():
            yield sim.timeout(5.0)
            yield ring.consume()

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert times[0] == 0.0
        assert times[1] == 5.0

    def test_oversized_message_rejected(self):
        sim = Simulator()
        ring = RingBuffer(sim, capacity=32)

        def sender():
            yield from ring.reserve(req(1))  # 48 B > 32 B

        sim.process(sender())
        with pytest.raises(ValueError):
            sim.run()

    def test_deposit_without_reservation_rejected(self):
        sim = Simulator()
        ring = RingBuffer(sim, capacity=1024)
        with pytest.raises(RingBufferFullError):
            ring.deposit(req(1))

    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            RingBuffer(sim, capacity=4)


class TestNonBlocking:
    def test_try_reserve_success_and_failure(self):
        sim = Simulator()
        message = req(1)
        ring = RingBuffer(sim, capacity=message_size(message) + 10)
        assert ring.try_reserve(message)
        assert not ring.try_reserve(message)  # no space left

    def test_try_consume_empty(self):
        sim = Simulator()
        ring = RingBuffer(sim, capacity=1024)
        found, message = ring.try_consume()
        assert not found
        assert message is None

    def test_try_consume_after_deposit(self):
        sim = Simulator()
        ring = RingBuffer(sim, capacity=1024)
        message = req(7)
        assert ring.try_reserve(message)
        ring.deposit(message)
        found, got = ring.try_consume()
        assert found
        assert got.req_id == 7


class TestRdmaTargetProtocol:
    def test_rdma_write_deposits(self):
        sim = Simulator()
        ring = RingBuffer(sim, capacity=1024)
        message = req(3)
        assert ring.try_reserve(message)
        ring.rdma_write(0, message_size(message), message, now=0.0)
        assert ring.pending_messages == 1

    def test_rdma_read_is_forbidden(self):
        sim = Simulator()
        ring = RingBuffer(sim, capacity=1024)
        with pytest.raises(NotImplementedError):
            ring.rdma_read(0, 64, now=0.0)


class TestCounters:
    def test_message_and_byte_counters(self):
        sim = Simulator()
        ring = RingBuffer(sim, capacity=4096)
        total = 0

        def sender():
            nonlocal total
            for i in range(3):
                m = req(i)
                total += message_size(m)
                yield from ring.reserve(m)
                ring.deposit(m)

        def receiver():
            for _ in range(3):
                yield ring.consume()

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert ring.messages_sent == 3
        assert ring.messages_received == 3
        assert ring.bytes_sent == total

    def test_high_watermark(self):
        sim = Simulator()
        ring = RingBuffer(sim, capacity=4096)

        def sender():
            for i in range(4):
                m = req(i)
                yield from ring.reserve(m)
                ring.deposit(m)

        sim.process(sender())
        sim.run()
        assert ring.high_watermark == 4 * message_size(req(0))
