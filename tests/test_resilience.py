"""Client-side resilience: deadlines, retries, breaker, bounded waits."""

import random

import pytest

from repro.client import ClientStats
from repro.client.adaptive import AdaptiveParams, CatfishSession
from repro.client.base import OP_INSERT, OP_SEARCH, Request
from repro.client.fm_client import FmSession
from repro.client.offload_client import OffloadEngine, OffloadError
from repro.client.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerParams,
    CircuitBreaker,
    RequestTimeoutError,
    RetryPolicy,
)
from repro.hw import Host
from repro.msg import SearchRequest, message_size
from repro.msg.ringbuffer import RingBuffer, RingBufferFullError
from repro.net import IB_100G, Network
from repro.rtree import Rect
from repro.server import EVENT, FastMessagingServer, RTreeServer
from repro.server.heartbeat import HeartbeatMailbox
from repro.sim import Simulator
from repro.sim.resources import Container
from repro.workloads import uniform_dataset


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_jitter=1.0)

    def test_writes_get_one_attempt_by_default(self):
        policy = RetryPolicy(max_attempts=5)
        assert policy.attempts_for(OP_SEARCH) == 5
        assert policy.attempts_for(OP_INSERT) == 1
        assert RetryPolicy(max_attempts=5,
                           retry_writes=True).attempts_for(OP_INSERT) == 5

    def test_backoff_is_exponential_and_jitter_bounded(self):
        policy = RetryPolicy(backoff_base_s=10e-6, backoff_factor=2.0,
                             backoff_jitter=0.5)
        rng = random.Random(1)
        for attempt in range(4):
            base = 10e-6 * 2.0 ** attempt
            for _ in range(50):
                delay = policy.backoff_s(attempt, rng)
                assert 0.5 * base <= delay <= 1.5 * base

    def test_reserve_timeout_defaults_to_deadline(self):
        assert RetryPolicy(deadline_s=1e-3).reserve_timeout == 1e-3
        assert RetryPolicy(deadline_s=1e-3,
                           reserve_timeout_s=2e-4).reserve_timeout == 2e-4


class TestCircuitBreaker:
    def _breaker(self, sim, **kw):
        params = dict(failure_threshold=2, cooldown_s=1e-3,
                      cooldown_factor=2.0, max_cooldown_s=4e-3)
        params.update(kw)
        return CircuitBreaker(sim, BreakerParams(**params))

    def test_trips_after_threshold_and_short_circuits(self):
        sim = Simulator()
        b = self._breaker(sim)
        assert b.allow() and b.state == CLOSED
        b.record_failure()
        assert b.state == CLOSED
        b.record_failure()
        assert b.state == OPEN and int(b.trips) == 1
        assert not b.allow()
        assert int(b.short_circuits) == 1

    def test_success_resets_consecutive_failures(self):
        b = self._breaker(Simulator())
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == CLOSED  # never two *consecutive* failures

    def test_half_open_probe_failure_grows_cooldown(self):
        sim = Simulator()
        b = self._breaker(sim)
        b.record_failure()
        b.record_failure()          # OPEN at t=0, cooldown 1ms
        sim.now = 1e-3
        assert b.allow()            # probe
        assert b.state == HALF_OPEN and int(b.probes) == 1
        b.record_failure()          # reopen, cooldown -> 2ms
        assert b.state == OPEN and int(b.trips) == 2
        sim.now = 2e-3
        assert not b.allow()        # only 1ms into the 2ms cooldown
        sim.now = 3e-3
        assert b.allow()
        b.record_success()
        assert b.state == CLOSED and int(b.recoveries) == 1
        # Cooldown reset: the next trip waits the base cooldown again.
        b.record_failure()
        b.record_failure()
        sim.now = 3e-3 + 1e-3
        assert b.allow()

    def test_cooldown_is_capped(self):
        sim = Simulator()
        b = self._breaker(sim, cooldown_s=1e-3, max_cooldown_s=2e-3)
        b.record_failure()
        b.record_failure()
        for _ in range(5):          # many failed probes
            sim.now += 10e-3
            assert b.allow()
            b.record_failure()
        assert b._cooldown == 2e-3


class TestBoundedReservation:
    def _full_ring(self, sim, capacity=512):
        ring = RingBuffer(sim, capacity, name="test-ring")
        msg = SearchRequest(0, Rect(0, 0, 1, 1))
        while ring.try_reserve(msg):
            ring.deposit(msg)
        return ring, msg

    def test_reserve_within_passes_when_space_exists(self):
        sim = Simulator()
        ring = RingBuffer(sim, 4096, name="test-ring")
        msg = SearchRequest(0, Rect(0, 0, 1, 1))

        def p():
            yield from ring.reserve_within(msg, 1e-3)

        sim.process(p())
        sim.run()
        assert ring.used_bytes >= message_size(msg)

    def test_reserve_within_times_out_on_full_ring(self):
        sim = Simulator()
        ring, msg = self._full_ring(sim)
        outcomes = []

        def p():
            try:
                yield from ring.reserve_within(msg, 50e-6)
            except RingBufferFullError:
                outcomes.append(sim.now)

        sim.process(p())
        sim.run()
        assert outcomes == [50e-6]

    def test_cancelled_wait_does_not_steal_space(self):
        sim = Simulator()
        ring, msg = self._full_ring(sim)

        def p():
            with pytest.raises(RingBufferFullError):
                yield from ring.reserve_within(msg, 50e-6)

        sim.process(p())
        sim.run()
        # Freeing space after the timeout must go to new callers, not to
        # the abandoned (cancelled) waiter.
        while ring.try_consume()[0]:
            pass
        assert ring.try_reserve(msg)

    def test_reserve_within_rejects_bad_args(self):
        sim = Simulator()
        ring = RingBuffer(sim, 256, name="test-ring")
        msg = SearchRequest(0, Rect(0, 0, 1, 1))
        with pytest.raises(ValueError):
            next(ring.reserve_within(msg, 0.0))

    def test_container_cancel_skips_getter(self):
        sim = Simulator()
        c = Container(sim, capacity=10.0, init=0.0)
        g1 = c.get(5.0)
        g1.cancel()
        g2 = c.get(3.0)
        c.put(4.0)
        assert not g1.triggered
        assert g2.triggered


def _stack(retry=None, n_items=500, seed=9):
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=2)
    net.attach_server(server_host)
    server = RTreeServer(sim, server_host, uniform_dataset(n_items, seed=seed),
                         max_entries=16)
    fm_server = FastMessagingServer(sim, server, net, mode=EVENT)
    client_host = Host(sim, "client", IB_100G, cores=2)
    conn = fm_server.open_connection(client_host)
    stats = ClientStats()
    fm = FmSession(sim, conn, 0, stats, retry=retry,
                   rng=random.Random(11))
    return sim, server, fm_server, conn, fm, stats


class TestFmRetries:
    def test_no_policy_behaviour_unchanged(self):
        sim, server, fm_server, conn, fm, stats = _stack(retry=None)

        def client():
            matches = yield from fm.search(Rect(0, 0, 1, 1))
            return matches

        proc = sim.process(client())
        sim.run_until_triggered(proc, limit=1.0)
        assert len(proc.value) == 500
        assert int(stats.request_timeouts) == 0
        assert int(stats.request_retries) == 0

    def test_retry_recovers_from_worker_crash(self):
        policy = RetryPolicy(deadline_s=100e-6, max_attempts=8,
                             backoff_base_s=10e-6)
        sim, server, fm_server, conn, fm, stats = _stack(retry=policy)
        # A small query: its service time must sit well under the
        # deadline, or every attempt times out even on a healthy worker.
        rect = Rect(0.45, 0.45, 0.55, 0.55)
        oracle = sorted(server.tree.search(rect).data_ids)

        def crasher():
            yield sim.timeout(20e-6)
            fm_server.crash_worker(conn)
            yield sim.timeout(300e-6)
            fm_server.restart_worker(conn)

        results = []

        def client():
            for _ in range(10):
                matches = yield from fm.search(rect)
                results.append(sorted(d for _r, d in matches))

        sim.process(crasher())
        proc = sim.process(client())
        sim.run_until_triggered(proc, limit=1.0)
        assert len(results) == 10
        assert all(ids == oracle for ids in results)
        assert int(stats.request_timeouts) >= 1
        assert int(stats.request_retries) >= 1
        # The re-sent attempts were eventually answered too; those late
        # answers were suppressed, not delivered.
        assert int(stats.duplicates_suppressed) >= 1
        assert int(stats.unexpected_messages) == 0

    def test_budget_exhaustion_raises(self):
        policy = RetryPolicy(deadline_s=50e-6, max_attempts=2,
                             backoff_base_s=5e-6)
        sim, server, fm_server, conn, fm, stats = _stack(retry=policy)
        fm_server.crash_worker(conn)  # never restarted

        def client():
            with pytest.raises(RequestTimeoutError):
                yield from fm.search(Rect(0, 0, 1, 1))

        proc = sim.process(client())
        sim.run_until_triggered(proc, limit=1.0)
        assert int(stats.request_timeouts) == 2
        assert int(stats.request_retries) == 1

    def test_full_request_ring_times_out_with_accounting(self):
        policy = RetryPolicy(deadline_s=50e-6, max_attempts=3,
                             backoff_base_s=5e-6)
        sim, server, fm_server, conn, fm, stats = _stack(retry=policy)
        filler = SearchRequest(0, Rect(0, 0, 1, 1))
        while conn.request_ring.try_reserve(filler):
            pass  # reservations that never complete: a wedged sender

        def client():
            with pytest.raises(RequestTimeoutError):
                yield from fm.search(Rect(0, 0, 1, 1))

        proc = sim.process(client())
        sim.run_until_triggered(proc, limit=1.0)
        assert int(stats.ring_full_timeouts) == 3
        assert int(stats.request_timeouts) == 0

    def test_unknown_message_is_counted_and_dropped(self):
        sim, server, fm_server, conn, fm, stats = _stack()

        class Garbage:
            def payload_size(self):
                return 8

        garbage = Garbage()
        assert conn.response_ring.try_reserve(garbage)
        conn.response_ring.deposit(garbage)
        sim.run()
        assert int(stats.unexpected_messages) == 1

        # The receiver survived: a normal request still completes.
        def client():
            matches = yield from fm.search(Rect(0, 0, 1, 1))
            return matches

        proc = sim.process(client())
        sim.run_until_triggered(proc, limit=1.0)
        assert len(proc.value) == 500


class _FlakyCatfish(CatfishSession):
    """Adaptive session whose offload path fails until ``fail_until``."""

    def __init__(self, *args, fail_until=0.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.fail_until = fail_until
        self.offload_successes = 0

    def _decide(self):
        return True  # always try to offload

    def _offload(self, request):
        if self.sim.now < self.fail_until:
            raise OffloadError("injected storm")
            yield  # pragma: no cover - makes this a generator
        result = yield from self.fm.execute(request)
        self.offload_successes += 1
        return result


def _adaptive_stack(fail_until, breaker_params):
    sim, server, fm_server, conn, fm, stats = _stack()
    engine = OffloadEngine(sim, conn.client_end,
                           server.offload_descriptor(), server.costs, stats)
    breaker = (CircuitBreaker(sim, breaker_params)
               if breaker_params is not None else None)
    session = _FlakyCatfish(
        sim, fm, engine, stats, params=AdaptiveParams(),
        breaker=breaker, fail_until=fail_until,
    )
    return sim, session, breaker, stats


class TestOffloadBreaker:
    def test_without_breaker_errors_propagate(self):
        sim, session, _breaker, stats = _adaptive_stack(
            fail_until=1.0, breaker_params=None,
        )

        def client():
            yield from session.execute(
                Request(OP_SEARCH, Rect(0, 0, 1, 1))
            )

        proc = sim.process(client())
        with pytest.raises(OffloadError):
            sim.run_until_triggered(proc, limit=1.0)

    def test_storm_trips_breaker_and_fails_over(self):
        params = BreakerParams(failure_threshold=3, cooldown_s=50e-6,
                               cooldown_factor=2.0, max_cooldown_s=1e-3)
        sim, session, breaker, stats = _adaptive_stack(
            fail_until=200e-6, breaker_params=params,
        )
        rect = Rect(0.4, 0.4, 0.6, 0.6)

        done = []

        def client():
            for _ in range(80):
                matches = yield from session.execute(
                    Request(OP_SEARCH, rect)
                )
                done.append(matches)

        proc = sim.process(client())
        sim.run_until_triggered(proc, limit=1.0)

        # Every request completed despite the storm: failover served them.
        assert len(done) == 80
        assert int(breaker.trips) >= 1
        assert int(session.offload_failovers) >= 3
        # While OPEN, requests were short-circuited straight to FM.
        assert int(breaker.short_circuits) >= 1
        # After the storm a half-open probe succeeded and closed it.
        assert breaker.state == CLOSED
        assert int(breaker.recoveries) >= 1
        assert session.offload_successes > 0


class _StubFm:
    def __init__(self):
        self.mailbox = HeartbeatMailbox()


class TestStaleHeartbeats:
    def test_missing_streak_cancels_offload_budget(self):
        sim = Simulator()
        session = CatfishSession(
            sim, _StubFm(), engine=None, stats=ClientStats(),
            params=AdaptiveParams(N=4, T=0.95, Inv=1e-6),
            stale_after_missing=2,
        )
        session.r_busy = 1
        session.r_off = 5
        session._t0 = -1.0  # force the Inv-elapsed branch

        assert session._decide() is True   # 1st miss: budget still drains
        assert session.r_off == 4
        assert session._decide() is False  # 2nd miss: budget cancelled
        assert session.r_off == 0 and session.r_busy == 0
        assert int(session.stale_resets) == 1
        assert int(session.heartbeats_missing) == 2

    def test_fresh_heartbeat_resets_streak(self):
        sim = Simulator()
        fm = _StubFm()
        session = CatfishSession(
            sim, fm, engine=None, stats=ClientStats(),
            params=AdaptiveParams(N=4, T=0.95, Inv=1e-6),
            stale_after_missing=2,
        )
        session._t0 = -1.0
        session.r_off = 3
        assert session._decide() is True   # miss #1
        from repro.msg import Heartbeat
        fm.mailbox.deliver(Heartbeat(utilization=0.0, seq=7))
        session._t0 = -1.0
        assert session._decide() is True   # fresh: streak cleared
        assert session._missing_streak == 0
        session._t0 = -1.0
        assert session._decide() is True   # miss #1 again, no reset
        assert int(session.stale_resets) == 0
