"""kNN and count-only queries: tree level, server level, all transports."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.client import ClientStats, OffloadEngine
from repro.client.base import OP_COUNT, OP_NEAREST, Request
from repro.msg import Heartbeat
from repro.client.fm_client import FmSession
from repro.hw import Host
from repro.net import IB_100G, Network
from repro.rtree import RStarTree, Rect, bulk_load
from repro.server import EVENT, FastMessagingServer, RTreeServer
from repro.sim import Simulator
from repro.transport import connect
from repro.workloads import uniform_dataset


def dist2(rect, x, y):
    dx = max(rect.minx - x, 0.0, x - rect.maxx)
    dy = max(rect.miny - y, 0.0, y - rect.maxy)
    return dx * dx + dy * dy


def brute_nearest(items, x, y, k):
    return sorted((dist2(r, x, y), i) for r, i in items)[:k]


class TestGeometryMinDist:
    def test_point_inside_is_zero(self):
        assert Rect(0, 0, 1, 1).min_dist2_point(0.5, 0.5) == 0.0

    def test_point_on_boundary_is_zero(self):
        assert Rect(0, 0, 1, 1).min_dist2_point(1.0, 0.3) == 0.0

    def test_axis_aligned_distance(self):
        assert Rect(0, 0, 1, 1).min_dist2_point(2.0, 0.5) == pytest.approx(1.0)

    def test_corner_distance(self):
        assert Rect(0, 0, 1, 1).min_dist2_point(2.0, 2.0) == pytest.approx(2.0)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(-2, 2, allow_nan=False), st.floats(-2, 2,
                                                        allow_nan=False))
    def test_lower_bounds_every_contained_point(self, x, y):
        rect = Rect(0.2, 0.3, 0.8, 0.9)
        # distance to the rect's nearest point equals min over corners/edges
        nearest_x = min(max(x, rect.minx), rect.maxx)
        nearest_y = min(max(y, rect.miny), rect.maxy)
        expected = (x - nearest_x) ** 2 + (y - nearest_y) ** 2
        assert rect.min_dist2_point(x, y) == pytest.approx(expected)


class TestTreeNearest:
    def _tree_and_items(self, n=600, seed=1, max_entries=8):
        items = uniform_dataset(n, seed=seed)
        tree = bulk_load(items, max_entries=max_entries)
        return tree, items

    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_brute_force(self, k):
        tree, items = self._tree_and_items()
        rng = random.Random(2)
        for _ in range(20):
            x, y = rng.random(), rng.random()
            got = tree.nearest(x, y, k)
            expected = brute_nearest(items, x, y, k)
            got_dists = [dist2(r, x, y) for r, _i in got.matches]
            assert len(got.matches) == k
            assert got_dists == sorted(got_dists)
            for g, e in zip(got_dists, (d for d, _ in expected)):
                assert g == pytest.approx(e)

    def test_k_larger_than_size(self):
        tree, items = self._tree_and_items(n=10)
        got = tree.nearest(0.5, 0.5, k=50)
        assert len(got.matches) == 10

    def test_k_validation(self):
        tree, _ = self._tree_and_items(n=10)
        with pytest.raises(ValueError):
            tree.nearest(0.5, 0.5, k=0)

    def test_empty_tree(self):
        tree = RStarTree(max_entries=8)
        assert tree.nearest(0.5, 0.5, k=3).matches == []

    def test_prunes_far_subtrees(self):
        tree, _ = self._tree_and_items(n=4000, max_entries=32)
        got = tree.nearest(0.5, 0.5, k=1)
        assert got.nodes_visited < tree.node_count / 5

    def test_nearest_on_point_hit(self):
        tree = RStarTree(max_entries=8)
        tree.insert(Rect(0.5, 0.5, 0.6, 0.6), 1)
        tree.insert(Rect(0.9, 0.9, 0.95, 0.95), 2)
        got = tree.nearest(0.55, 0.55, k=1)
        assert got.matches[0][1] == 1


def make_stack(n_items=800):
    sim = Simulator()
    net = Network(sim, IB_100G)
    server_host = Host(sim, "server", IB_100G, cores=4)
    net.attach_server(server_host)
    items = uniform_dataset(n_items, seed=3)
    server = RTreeServer(sim, server_host, items, max_entries=16)
    fm_server = FastMessagingServer(sim, server, net, mode=EVENT)
    client_host = Host(sim, "client", IB_100G, cores=2)
    conn = fm_server.open_connection(client_host)
    stats = ClientStats()
    fm = FmSession(sim, conn, 0, stats)
    engine = OffloadEngine(sim, conn.client_end,
                           server.offload_descriptor(), server.costs, stats)
    return sim, server, fm, engine, stats, items


class TestServerAndTransports:
    def test_fm_nearest_round_trip(self):
        sim, server, fm, engine, stats, items = make_stack()

        def client():
            matches = yield from fm.execute(
                Request(OP_NEAREST, Rect.point(0.5, 0.5), k=7))
            return matches

        p = sim.process(client())
        sim.run()
        expected = brute_nearest(items, 0.5, 0.5, 7)
        got_dists = [dist2(r, 0.5, 0.5) for r, _i in p.value]
        assert len(p.value) == 7
        for g, (e, _i) in zip(got_dists, expected):
            assert g == pytest.approx(e)

    def test_fm_count_round_trip(self):
        sim, server, fm, engine, stats, items = make_stack()
        query = Rect(0.2, 0.2, 0.6, 0.6)

        def client():
            count = yield from fm.execute(Request(OP_COUNT, query))
            return count

        p = sim.process(client())
        sim.run()
        assert p.value == server.tree.search(query).count

    def test_count_response_is_tiny(self):
        """The count path must not ship the matching rectangles."""
        sim, server, fm, engine, stats, items = make_stack()
        conn = fm.conn
        query = Rect(0, 0, 1, 1)  # all 800 items

        def client():
            count = yield from fm.execute(Request(OP_COUNT, query))
            return count

        p = sim.process(client())
        sim.run()
        assert p.value == 800
        # one request + one small response segment; far below the 800*40B
        # a search response would have moved
        assert conn.response_ring.bytes_sent < 200

    def test_offload_nearest_matches_server(self):
        sim, server, fm, engine, stats, items = make_stack()

        def client():
            offloaded = yield from engine.nearest(0.3, 0.7, k=5)
            served = yield from server.execute_nearest(0.3, 0.7, 5)
            return offloaded, served

        p = sim.process(client())
        sim.run()
        offloaded, served = p.value
        assert [dist2(r, 0.3, 0.7) for r, _i in offloaded] == pytest.approx(
            [dist2(r, 0.3, 0.7) for r, _i in served]
        )

    def test_offload_count_matches_server(self):
        sim, server, fm, engine, stats, items = make_stack()
        query = Rect(0.1, 0.1, 0.5, 0.5)

        def client():
            count = yield from engine.count(query)
            return count

        p = sim.process(client())
        sim.run()
        assert p.value == server.tree.search(query).count

    def test_offload_nearest_zero_server_cpu(self):
        sim, server, fm, engine, stats, items = make_stack()

        def client():
            for _ in range(10):
                yield from engine.nearest(0.4, 0.4, k=3)

        sim.process(client())
        sim.run()
        assert server.host.cpu.total_work_seconds == 0.0

    def test_nearest_k_validation(self):
        sim, server, fm, engine, stats, items = make_stack()
        with pytest.raises(ValueError):
            Request(OP_NEAREST, Rect.point(0.5, 0.5))  # k missing

    def test_tcp_nearest_and_count(self):
        from repro.client.tcp_client import TcpSession
        from repro.net import ETH_1G
        from repro.server import TcpRTreeServer
        from repro.transport import TcpConnection
        sim = Simulator()
        net = Network(sim, ETH_1G)
        server_host = Host(sim, "server", ETH_1G, cores=4)
        net.attach_server(server_host)
        items = uniform_dataset(300, seed=5)
        server = RTreeServer(sim, server_host, items, max_entries=16)
        tcp_server = TcpRTreeServer(sim, server)
        client_host = Host(sim, "client", ETH_1G, cores=2)
        conn = TcpConnection(sim, net, client_host, server_host)
        tcp_server.accept(conn)
        session = TcpSession(sim, conn, 0, ClientStats())
        query = Rect(0.2, 0.2, 0.7, 0.7)

        def client():
            nearest = yield from session.execute(
                Request(OP_NEAREST, Rect.point(0.5, 0.5), k=3))
            count = yield from session.execute(Request(OP_COUNT, query))
            return nearest, count

        p = sim.process(client())
        sim.run()
        nearest, count = p.value
        assert len(nearest) == 3
        assert count == server.tree.search(query).count

    def test_catfish_session_routes_nearest(self):
        from repro.client import AdaptiveParams, CatfishSession
        sim, server, fm, engine, stats, items = make_stack()
        session = CatfishSession(
            sim, fm, engine, stats,
            params=AdaptiveParams(N=8, T=0.9, Inv=0.2e-3),
            rng=random.Random(6),
        )
        fm.mailbox.deliver(Heartbeat(1.0, seq=1))  # server is busy

        def client():
            out = []
            for i in range(8):
                # advance past Inv so the mailbox is consumed
                yield sim.timeout(0.3e-3)
                fm.mailbox.deliver(
                    Heartbeat(1.0, seq=fm.mailbox.seq + 1))
                matches = yield from session.execute(
                    Request(OP_NEAREST, Rect.point(0.5, 0.5), k=2))
                out.append(len(matches))
            return out

        p = sim.process(client())
        sim.run_until_triggered(p)
        assert all(n == 2 for n in p.value)
        assert stats.offloaded_requests > 0
